package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/faults"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Property: DynamicS3 under randomly varying slot availability still
// gives every job every block exactly once, in circular order from its
// start block.
func TestDynamicS3CoverageProperty(t *testing.T) {
	prop := func(seed int64, blocks8, nodes8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numBlocks := int(blocks8%30) + 2
		numNodes := int(nodes8%5) + 1
		nJobs := int(n8%4) + 1

		store := dfs.MustStore(numNodes, 1)
		f, err := store.AddMetaFile("input", numBlocks, 64)
		if err != nil {
			return false
		}
		// A slot checker whose estimates we mutate randomly between
		// rounds, sometimes excluding nodes.
		checker := NewSlotChecker(0.5, 1.0, nil)
		all := make([]dfs.NodeID, numNodes)
		for i := range all {
			all[i] = dfs.NodeID(i)
			checker.Observe(all[i], 1.0, 0)
		}
		d, err := NewDynamic(f, all, 1, checker, nil)
		if err != nil {
			return false
		}

		blockSeen := map[scheduler.JobID]map[int]int{}
		firstBlock := map[scheduler.JobID]int{}
		submitted := 0
		steps := 0
		for submitted < nJobs || d.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < nJobs && (rng.Intn(3) == 0 || d.PendingJobs() == 0) {
				id := scheduler.JobID(submitted + 1)
				if err := d.Submit(scheduler.JobMeta{ID: id, File: "input"}, 0); err != nil {
					return false
				}
				blockSeen[id] = map[int]int{}
				submitted++
				continue
			}
			// Random slot degradation/recovery.
			node := dfs.NodeID(rng.Intn(numNodes))
			if rng.Intn(2) == 0 {
				checker.Observe(node, 0.1, 0)
			} else {
				checker.Observe(node, 1.0, 0)
			}
			r, ok := d.NextRound(0)
			if !ok {
				return false
			}
			if len(r.Blocks) == 0 || len(r.Blocks) > len(r.Nodes) {
				return false // segment must fit the available slots
			}
			for _, j := range r.Jobs {
				for _, b := range r.Blocks {
					if _, started := firstBlock[j.ID]; !started {
						firstBlock[j.ID] = b.Index
					}
					blockSeen[j.ID][b.Index]++
				}
			}
			d.RoundDone(r, 0)
		}
		// Exactly-once coverage per job.
		for id, seen := range blockSeen {
			if len(seen) != numBlocks {
				return false
			}
			for _, c := range seen {
				if c != 1 {
					return false
				}
			}
			_ = id
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: NoCircular always scans segments 0..k-1 in order within a
// pass, and a job's rounds all belong to a single pass.
func TestNoCircularPassProperty(t *testing.T) {
	prop := func(seed int64, k8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%8) + 1
		n := int(n8%5) + 1

		store := dfs.MustStore(2, 1)
		f, err := store.AddMetaFile("input", k, 64)
		if err != nil {
			return false
		}
		p, err := dfs.PlanSegments(f, 1)
		if err != nil {
			return false
		}
		s := NewNoCircular(p, nil)

		segsByJob := map[scheduler.JobID][]int{}
		submitted := 0
		steps := 0
		for submitted < n || s.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < n && (rng.Intn(2) == 0 || s.PendingJobs() == 0) {
				id := scheduler.JobID(submitted + 1)
				if err := s.Submit(scheduler.JobMeta{ID: id, File: "input"}, 0); err != nil {
					return false
				}
				submitted++
				continue
			}
			r, ok := s.NextRound(0)
			if !ok {
				return false
			}
			for _, j := range r.Jobs {
				segsByJob[j.ID] = append(segsByJob[j.ID], r.Segment)
			}
			s.RoundDone(r, 0)
		}
		if len(segsByJob) != n {
			return false
		}
		for _, segs := range segsByJob {
			if len(segs) != k {
				return false
			}
			for i, seg := range segs {
				if seg != i {
					return false // always 0..k-1 in order
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: MultiFile never mixes files within a round, serves only
// files with pending jobs, and preserves each file's per-job circular
// coverage.
func TestMultiFileProperty(t *testing.T) {
	prop := func(seed int64, ka8, kb8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ka := int(ka8%6) + 1
		kb := int(kb8%6) + 1
		n := int(n8%6) + 2

		store := dfs.MustStore(2, 1)
		fa, err := store.AddMetaFile("alpha", ka, 64)
		if err != nil {
			return false
		}
		fb, err := store.AddMetaFile("beta", kb, 64)
		if err != nil {
			return false
		}
		pa, err := dfs.PlanSegments(fa, 1)
		if err != nil {
			return false
		}
		pb, err := dfs.PlanSegments(fb, 1)
		if err != nil {
			return false
		}
		m, err := NewMultiFile([]*dfs.SegmentPlan{pa, pb}, nil)
		if err != nil {
			return false
		}

		segsByJob := map[scheduler.JobID][]dfs.BlockID{}
		fileOf := map[scheduler.JobID]string{}
		submitted := 0
		steps := 0
		for submitted < n || m.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < n && (rng.Intn(2) == 0 || m.PendingJobs() == 0) {
				id := scheduler.JobID(submitted + 1)
				file := "alpha"
				if rng.Intn(2) == 0 {
					file = "beta"
				}
				if err := m.Submit(scheduler.JobMeta{ID: id, File: file, Priority: rng.Intn(3)}, 0); err != nil {
					return false
				}
				fileOf[id] = file
				submitted++
				continue
			}
			r, ok := m.NextRound(0)
			if !ok {
				return false
			}
			file := r.Blocks[0].File
			for _, b := range r.Blocks {
				if b.File != file {
					return false
				}
			}
			for _, j := range r.Jobs {
				if fileOf[j.ID] != file {
					return false // batch contains a foreign job
				}
				segsByJob[j.ID] = append(segsByJob[j.ID], r.Blocks...)
			}
			m.RoundDone(r, 0)
		}
		// Exactly-once block coverage per job, within its own file.
		for id, blocks := range segsByJob {
			want := ka
			if fileOf[id] == "beta" {
				want = kb
			}
			seen := map[int]bool{}
			for _, b := range blocks {
				if b.File != fileOf[id] || seen[b.Index] {
					return false
				}
				seen[b.Index] = true
			}
			if len(seen) != want {
				return false
			}
		}
		return len(segsByJob) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: MultiFile with an arbitrary cache advisor still preserves
// every structural invariant — single-file rounds, exactly-once block
// coverage per job — because the advisor only breaks priority ties, it
// never changes what gets scanned.
func TestMultiFileCacheAdvisorProperty(t *testing.T) {
	prop := func(seed int64, ka8, kb8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ka := int(ka8%6) + 1
		kb := int(kb8%6) + 1
		n := int(n8%6) + 2

		store := dfs.MustStore(2, 1)
		fa, err := store.AddMetaFile("alpha", ka, 64)
		if err != nil {
			return false
		}
		fb, err := store.AddMetaFile("beta", kb, 64)
		if err != nil {
			return false
		}
		pa, err := dfs.PlanSegments(fa, 1)
		if err != nil {
			return false
		}
		pb, err := dfs.PlanSegments(fb, 1)
		if err != nil {
			return false
		}
		m, err := NewMultiFile([]*dfs.SegmentPlan{pa, pb}, nil)
		if err != nil {
			return false
		}
		// An adversarial advisor: arbitrary warmth on every call.
		advRng := rand.New(rand.NewSource(seed ^ 0x7ee1))
		m.SetCacheAdvisor(func(blocks []dfs.BlockID) int64 {
			return int64(advRng.Intn(1 << 16))
		})

		segsByJob := map[scheduler.JobID][]dfs.BlockID{}
		fileOf := map[scheduler.JobID]string{}
		submitted := 0
		steps := 0
		for submitted < n || m.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < n && (rng.Intn(2) == 0 || m.PendingJobs() == 0) {
				id := scheduler.JobID(submitted + 1)
				file := "alpha"
				if rng.Intn(2) == 0 {
					file = "beta"
				}
				if err := m.Submit(scheduler.JobMeta{ID: id, File: file, Priority: rng.Intn(3)}, 0); err != nil {
					return false
				}
				fileOf[id] = file
				submitted++
				continue
			}
			r, ok := m.NextRound(0)
			if !ok {
				return false
			}
			file := r.Blocks[0].File
			for _, b := range r.Blocks {
				if b.File != file {
					return false
				}
			}
			for _, j := range r.Jobs {
				if fileOf[j.ID] != file {
					return false
				}
				segsByJob[j.ID] = append(segsByJob[j.ID], r.Blocks...)
			}
			m.RoundDone(r, 0)
		}
		for id, blocks := range segsByJob {
			want := ka
			if fileOf[id] == "beta" {
				want = kb
			}
			seen := map[int]bool{}
			for _, b := range blocks {
				if b.File != fileOf[id] || seen[b.Index] {
					return false
				}
				seen[b.Index] = true
			}
			if len(seen) != want {
				return false
			}
		}
		return len(segsByJob) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the block cache is invisible to computation. For seeded
// wordcount workloads on the real engine, the cache-on run produces
// byte-identical outputs to the cache-off run while never doing more
// physical reads. Engine runs are comparatively slow, so MaxCount stays
// modest.
func TestCacheTransparencyProperty(t *testing.T) {
	prop := func(seed int64, blocks8, jobs8, budget8 uint8) bool {
		numBlocks := int(blocks8%12) + 4
		numJobs := int(jobs8%3) + 2
		const nodes = 4
		const blockSize = int64(2 << 10)
		// Budget sweeps from undersized (evictions exercised) to roomy.
		budget := (int64(budget8%8) + 1) * blockSize

		run := func(cacheBytes int64) (map[scheduler.JobID]*mapreduce.Result, dfs.Stats, bool) {
			store := dfs.MustStore(nodes, 1)
			if _, err := workload.AddTextFile(store, "corpus", numBlocks, blockSize, seed); err != nil {
				return nil, dfs.Stats{}, false
			}
			if cacheBytes > 0 {
				if _, err := store.EnableCache(cacheBytes); err != nil {
					return nil, dfs.Stats{}, false
				}
			}
			f, err := store.File("corpus")
			if err != nil {
				return nil, dfs.Stats{}, false
			}
			plan, err := dfs.PlanSegments(f, nodes)
			if err != nil {
				return nil, dfs.Stats{}, false
			}
			engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
			specs := make(map[scheduler.JobID]mapreduce.JobSpec)
			var arrivals []driver.Arrival
			prefixes := workload.DistinctPrefixes(numJobs)
			for i := 0; i < numJobs; i++ {
				id := scheduler.JobID(i + 1)
				specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
				arrivals = append(arrivals, driver.Arrival{
					Job: scheduler.JobMeta{ID: id, File: "corpus"},
					At:  vclock.Time(i),
				})
			}
			exec := driver.NewEngineExecutor(engine, specs)
			if _, err := driver.Run(New(plan, nil), exec, arrivals); err != nil {
				return nil, dfs.Stats{}, false
			}
			return exec.Results(), store.Stats(), true
		}

		cold, coldStats, ok := run(0)
		if !ok {
			return false
		}
		warm, warmStats, ok := run(budget)
		if !ok {
			return false
		}
		if warmStats.BlockReads > coldStats.BlockReads {
			t.Logf("cache increased physical reads: %d > %d", warmStats.BlockReads, coldStats.BlockReads)
			return false
		}
		if len(cold) != len(warm) {
			return false
		}
		for id, rc := range cold {
			rw := warm[id]
			if rw == nil || rc.Name != rw.Name || len(rc.Output) != len(rw.Output) {
				t.Logf("job %d output shape diverged", id)
				return false
			}
			for i := range rc.Output {
				if rc.Output[i] != rw.Output[i] {
					t.Logf("job %d output[%d] diverged", id, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 18}); err != nil {
		t.Error(err)
	}
}

// fixedDurExec wraps the real EngineExecutor but reports constant
// stage durations, so the driver's virtual clock — and with it the
// scheduler's admission decisions and round sequence — is identical
// across runs whose physical work differs (cache on vs off, prefetch
// vs demand loads). Wall time never reaches the scheduler, which makes
// round counts directly comparable.
type fixedDurExec struct {
	inner *driver.EngineExecutor
}

func (f *fixedDurExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	mapDur, stage, err := f.ExecMapStage(r)
	if err != nil {
		return 0, err
	}
	redDur, err := stage()
	if err != nil {
		return 0, err
	}
	return mapDur + redDur, nil
}

func (f *fixedDurExec) ExecMapStage(r scheduler.Round) (vclock.Duration, driver.ReduceStage, error) {
	_, stage, err := f.inner.ExecMapStage(r)
	if err != nil {
		return 0, nil, err
	}
	return 1, func() (vclock.Duration, error) {
		if _, err := stage(); err != nil {
			return 0, err
		}
		return 1, nil
	}, nil
}

func (f *fixedDurExec) TakeJobFailures() []scheduler.JobFailure { return f.inner.TakeJobFailures() }

// The tentpole acceptance property: every eviction policy is invisible
// to computation on the real engine, with and without injected read
// faults. For each cell of {lru, 2q, cursor} × {faults off, on}, the
// cache-on run (scan hints wired, cursor prefetching on the real read
// path) must produce byte-identical job outputs to the cache-off run,
// march through the *same number of rounds*, and never do more
// physical reads. Fault injection stays below the retry budget, so
// recovery is guaranteed and outputs stay exact.
func TestCachePolicyMatrixTransparency(t *testing.T) {
	const (
		nodes     = 4
		numBlocks = 12
		blockSize = int64(2 << 10)
		numJobs   = 3
		seed      = 23
	)
	type outcome struct {
		results map[scheduler.JobID]*mapreduce.Result
		rounds  int
		reads   int64
		hits    int64
	}
	run := func(t *testing.T, policy string, budget int64, withFaults bool) outcome {
		t.Helper()
		store := dfs.MustStore(nodes, 1)
		if _, err := workload.AddTextFile(store, "corpus", numBlocks, blockSize, seed); err != nil {
			t.Fatal(err)
		}
		if budget > 0 {
			if _, err := store.EnableCachePolicy(budget, policy); err != nil {
				t.Fatal(err)
			}
		}
		f, err := store.File("corpus")
		if err != nil {
			t.Fatal(err)
		}
		plan, err := dfs.PlanSegments(f, nodes)
		if err != nil {
			t.Fatal(err)
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
		if withFaults {
			inj, err := faults.New(faults.Config{Seed: 99, ReadFailRate: 0.2, MaxInjectedPerBlock: 2})
			if err != nil {
				t.Fatal(err)
			}
			store.SetReadFault(inj.FailRead)
			if err := engine.SetRetryPolicy(mapreduce.RetryPolicy{MaxAttempts: 4}); err != nil {
				t.Fatal(err)
			}
		}
		specs := make(map[scheduler.JobID]mapreduce.JobSpec)
		var arrivals []driver.Arrival
		prefixes := workload.DistinctPrefixes(numJobs)
		for i := 0; i < numJobs; i++ {
			id := scheduler.JobID(i + 1)
			specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
			// Staggered arrivals: later jobs join mid-scan and wrap
			// around the file, so the run re-reads blocks and the cache
			// has repeats to absorb.
			arrivals = append(arrivals, driver.Arrival{
				Job: scheduler.JobMeta{ID: id, File: "corpus"},
				At:  vclock.Time(2 * i),
			})
		}
		exec := driver.NewEngineExecutor(engine, specs)
		sched := New(plan, nil)
		if budget > 0 {
			sched.SetScanHinter(store.HandleScanHint)
		}
		res, err := driver.Run(sched, &fixedDurExec{inner: exec}, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			results: exec.Results(),
			rounds:  res.Rounds,
			reads:   store.Stats().BlockReads,
			hits:    store.CacheStats().Hits,
		}
	}
	for _, withFaults := range []bool{false, true} {
		withFaults := withFaults
		suffix := "faults-off"
		if withFaults {
			suffix = "faults-on"
		}
		cold := run(t, "", 0, withFaults)
		if len(cold.results) != numJobs {
			t.Fatalf("%s: cold run finished %d jobs, want %d", suffix, len(cold.results), numJobs)
		}
		for _, policy := range dfs.Policies() {
			policy := policy
			t.Run(policy+"/"+suffix, func(t *testing.T) {
				warm := run(t, policy, 6*blockSize, withFaults)
				if warm.rounds != cold.rounds {
					t.Fatalf("round count diverged: cache-on %d, cache-off %d", warm.rounds, cold.rounds)
				}
				if warm.reads > cold.reads {
					t.Fatalf("cache increased physical reads: %d > %d", warm.reads, cold.reads)
				}
				if warm.hits == 0 {
					t.Fatal("cache-on run recorded no hits")
				}
				if len(warm.results) != len(cold.results) {
					t.Fatalf("job count diverged: %d vs %d", len(warm.results), len(cold.results))
				}
				for id, rc := range cold.results {
					rw := warm.results[id]
					if rw == nil || rc.Name != rw.Name || len(rc.Output) != len(rw.Output) {
						t.Fatalf("job %d output shape diverged", id)
					}
					for i := range rc.Output {
						if rc.Output[i] != rw.Output[i] {
							t.Fatalf("job %d output[%d] diverged: %+v vs %+v", id, i, rc.Output[i], rw.Output[i])
						}
					}
				}
			})
		}
	}
}
