package core

import (
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// makeNamedPlan builds a segment plan over a named meta file.
func makeNamedPlan(t *testing.T, name string, numBlocks, perSegment int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile(name, numBlocks, 64<<20)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

// step runs one full round on any scheduler.
func step(t *testing.T, s scheduler.Scheduler) []scheduler.JobID {
	t.Helper()
	r, ok := s.NextRound(0)
	if !ok {
		t.Fatal("scheduler idle with pending jobs")
	}
	return s.RoundDone(r, 0)
}

func TestS3StateSnapshotRoundtrip(t *testing.T) {
	s := New(makePlan(t, 12, 3), nil) // 4 segments
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	step(t, s)
	if err := s.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	step(t, s)

	snap, err := s.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scheme != "s3" || len(snap.Queues) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// A restored scheduler finishes the remaining rounds identically.
	r2 := New(makePlan(t, 12, 3), nil)
	if err := r2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	var refDone, restDone []scheduler.JobID
	for s.PendingJobs() > 0 {
		refDone = append(refDone, step(t, s)...)
	}
	for r2.PendingJobs() > 0 {
		restDone = append(restDone, step(t, r2)...)
	}
	if len(refDone) != len(restDone) {
		t.Fatalf("ref completed %v, restored %v", refDone, restDone)
	}
	for i := range refDone {
		if refDone[i] != restDone[i] {
			t.Fatalf("ref completed %v, restored %v", refDone, restDone)
		}
	}
	// Restoring into a used scheduler is rejected.
	if err := r2.RestoreState(snap); err == nil {
		t.Fatal("RestoreState on a used scheduler succeeded")
	}
}

func TestS3StateSnapshotInFlightFails(t *testing.T) {
	s := New(makePlan(t, 12, 3), nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextRound(0); !ok {
		t.Fatal("no round")
	}
	if _, err := s.StateSnapshot(); err == nil {
		t.Fatal("snapshot with round in flight succeeded")
	}
}

func TestMultiFileStateSnapshotRoundtrip(t *testing.T) {
	mk := func() *MultiFile {
		plans := []*dfs.SegmentPlan{
			makeNamedPlan(t, "corpus", 12, 3),   // 4 segments
			makeNamedPlan(t, "lineitem", 12, 3), // 4 segments
		}
		m, err := NewMultiFile(plans, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := mk()
	for i, f := range []string{"corpus", "corpus", "lineitem"} {
		if err := ref.Submit(fileJob(i+1, f, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Advance a few rounds so cursors and the rotation pointer move.
	step(t, ref)
	step(t, ref)
	step(t, ref)

	snap, err := ref.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scheme != "s3-multifile" || len(snap.Queues) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := len(snap.Jobs()); got != 3 {
		t.Fatalf("snapshot holds %d jobs, want 3", got)
	}

	rest := mk()
	if err := rest.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	// Both finish the workload with identical round/completion order.
	var refSeq, restSeq []scheduler.JobID
	for ref.PendingJobs() > 0 {
		refSeq = append(refSeq, step(t, ref)...)
	}
	for rest.PendingJobs() > 0 {
		restSeq = append(restSeq, step(t, rest)...)
	}
	if len(refSeq) != len(restSeq) {
		t.Fatalf("ref %v restored %v", refSeq, restSeq)
	}
	for i := range refSeq {
		if refSeq[i] != restSeq[i] {
			t.Fatalf("ref %v restored %v", refSeq, restSeq)
		}
	}
	// A restored job id is still registered: resubmitting is a dup.
	if err := rest.Submit(fileJob(1, "corpus", 0), 0); err == nil {
		t.Fatal("restored job id resubmitted without error")
	}
}

func TestMultiFileRestoreRejectsMismatch(t *testing.T) {
	plans := []*dfs.SegmentPlan{makeNamedPlan(t, "corpus", 12, 3)}
	m, err := NewMultiFile(plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(scheduler.Snapshot{Scheme: "fifo"}); err == nil {
		t.Fatal("wrong scheme accepted")
	}
	if err := m.RestoreState(scheduler.Snapshot{
		Scheme: "s3-multifile",
		Queues: []scheduler.QueueSnapshot{{File: "nosuch", Segments: 4}},
	}); err == nil {
		t.Fatal("unregistered file accepted")
	}
	if err := m.RestoreState(scheduler.Snapshot{
		Scheme: "s3-multifile",
		Queues: []scheduler.QueueSnapshot{{File: "corpus", Segments: 99}},
	}); err == nil {
		t.Fatal("segment-count mismatch accepted")
	}
}
