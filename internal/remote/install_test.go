package remote

import (
	"strings"
	"testing"
	"time"

	"s3sched/internal/dfs"
)

// InstallFile end to end: a derived file published at the master lands
// in every live worker's store, replays to late registrants, and
// geometry conflicts are refused on both sides.
func TestInstallFileBroadcastAndReplay(t *testing.T) {
	master, workers, ctlAddr := startDynamicCluster(t, 2, nil, testCtlConfig)

	// Blocks are padded to exactly blockSize, the framing StoreResult
	// writes.
	pad := func(s string) []byte {
		b := make([]byte, 64)
		copy(b, s)
		return b
	}
	blocks := [][]byte{pad("the\t4\nfox\t1\n"), pad("dog\t2\n")}
	if err := master.InstallFile("job-1.out", 64, blocks); err != nil {
		t.Fatalf("InstallFile: %v", err)
	}
	for i, w := range workers {
		f, err := w.store.File("job-1.out")
		if err != nil {
			t.Fatalf("worker %d missing installed file: %v", i, err)
		}
		if f.NumBlocks != 2 || f.BlockSize != 64 {
			t.Fatalf("worker %d geometry = %d×%dB", i, f.NumBlocks, f.BlockSize)
		}
		data, err := w.store.ReadBlock(dfs.BlockID{File: "job-1.out", Index: 0})
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(blocks[0]) {
			t.Fatalf("worker %d block 0 = %q", i, data)
		}
	}

	// Idempotent re-install; conflicting geometry refused.
	if err := master.InstallFile("job-1.out", 64, blocks); err != nil {
		t.Fatalf("same-geometry re-install: %v", err)
	}
	if err := master.InstallFile("job-1.out", 128, blocks); err == nil {
		t.Fatal("geometry conflict accepted")
	}
	if err := master.InstallFile("", 64, blocks); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := master.InstallFile("empty", 64, nil); err == nil {
		t.Fatal("zero blocks accepted")
	}

	// A worker registering after the install receives the file during
	// the registration handshake.
	late := startRegisteredWorker(t, NewStandardRegistry(), ctlAddr, "late")
	defer late.Close()
	waitFor(t, 5*time.Second, "late worker to receive replayed file", func() bool {
		_, err := late.store.File("job-1.out")
		return err == nil
	})
}

func TestWorkerInstallFileConflicts(t *testing.T) {
	w := NewWorker(testStore(t), NewStandardRegistry())
	block := make([]byte, 32)
	copy(block, "k\t1\n")
	args := &InstallFileArgs{Name: "job-9.out", BlockSize: 32, Blocks: [][]byte{block}}
	var reply InstallFileReply
	if err := w.InstallFile(args, &reply); err != nil {
		t.Fatal(err)
	}
	// Same geometry: acked. Different: refused with both geometries named.
	if err := w.InstallFile(args, &reply); err != nil {
		t.Fatalf("idempotent re-install: %v", err)
	}
	conflict := &InstallFileArgs{Name: "job-9.out", BlockSize: 64, Blocks: [][]byte{[]byte("k\t1\n")}}
	err := w.InstallFile(conflict, &reply)
	if err == nil || !strings.Contains(err.Error(), "already installed") {
		t.Fatalf("conflict err = %v", err)
	}
	if err := w.InstallFile(&InstallFileArgs{Name: "", Blocks: [][]byte{[]byte("x")}}, &reply); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.InstallFile(&InstallFileArgs{Name: "nb"}, &reply); err == nil {
		t.Fatal("zero blocks accepted")
	}
}
