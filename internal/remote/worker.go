package remote

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Worker executes map and reduce tasks against its own local block
// store. In the paper's deployment this is a slave node with its HDFS
// blocks on local disk; here the store regenerates blocks from the
// deterministic workload generators, so no data is ever shipped.
type Worker struct {
	store    *dfs.Store
	registry *Registry
	// log, when non-nil, records one TaskServed event per completed
	// RPC, echoing the master's correlation id. Timestamps are on the
	// worker's own wall clock; the corr id — not the clock — is what
	// joins the two traces.
	log   *trace.Log
	clock *vclock.Wall

	mapTasks    atomic.Int64
	reduceTasks atomic.Int64

	mu    sync.Mutex
	ln    net.Listener
	addr  string // bound task-serve address, set by Serve
	conns map[net.Conn]struct{}

	// Control-plane state (registration mode; see control.go).
	ctlMu         sync.Mutex
	ctlStop       chan struct{}
	ctlDone       chan struct{}
	registrations atomic.Int64
	heartbeats    atomic.Int64
}

// NewWorker builds a worker over its local store and job registry.
func NewWorker(store *dfs.Store, registry *Registry) *Worker {
	if store == nil || registry == nil {
		panic("remote: worker needs a store and a registry")
	}
	return &Worker{store: store, registry: registry, clock: vclock.NewWall()}
}

// SetTrace installs a trace log recording every served task. nil
// clears it. Call before Serve.
func (w *Worker) SetTrace(log *trace.Log) { w.log = log }

// ExecMap implements the MapTask RPC: scan the block once, run every
// job's mapper over it, combine and partition each job's output.
func (w *Worker) ExecMap(args *MapTaskArgs, reply *MapTaskReply) error {
	if len(args.Jobs) == 0 {
		return fmt.Errorf("remote: map task with no jobs")
	}
	data, err := w.store.ReadBlock(dfs.BlockID{File: args.File, Index: args.BlockIndex})
	if err != nil {
		return err
	}
	reply.BytesScanned = int64(len(data))
	reply.PerJob = make([][][]mapreduce.KV, len(args.Jobs))
	for i, ref := range args.Jobs {
		mapper, _, combiner, err := w.registry.Build(ref.Factory, ref.Param)
		if err != nil {
			return err
		}
		width := ref.NumReduce
		if width <= 0 {
			width = 1
		}
		parts, err := mapreduce.MapBlockForJob(dfs.BlockID{File: args.File, Index: args.BlockIndex},
			data, mapper, combiner, width)
		if err != nil {
			return fmt.Errorf("remote: job %q block %d: %w", ref.Name, args.BlockIndex, err)
		}
		reply.PerJob[i] = parts
		w.mapTasks.Add(1)
	}
	w.log.Addf(w.clock.Now(), trace.TaskServed, -1, -1, "corr=%s map %s#%d jobs %d bytes %d", args.Corr, args.File, args.BlockIndex, len(args.Jobs), reply.BytesScanned)
	return nil
}

// ExecReduce implements the ReduceTask RPC: sort, group and reduce one
// partition's records.
func (w *Worker) ExecReduce(args *ReduceTaskArgs, reply *ReduceTaskReply) error {
	_, reducer, _, err := w.registry.Build(args.Job.Factory, args.Job.Param)
	if err != nil {
		return err
	}
	out, err := mapreduce.ReducePartition(args.Records, reducer)
	if err != nil {
		return fmt.Errorf("remote: job %q partition %d: %w", args.Job.Name, args.Partition, err)
	}
	reply.Output = out
	w.reduceTasks.Add(1)
	w.log.Addf(w.clock.Now(), trace.TaskServed, -1, -1, "corr=%s reduce %q partition %d records %d", args.Corr, args.Job.Name, args.Partition, len(args.Records))
	return nil
}

// InstallFile implements the InstallFile RPC: add a derived file's
// blocks to the local store. Idempotent — re-installation of a file
// the store already holds is acked if the geometry matches (a master
// re-pushing after recovery, or a re-registration replay) and rejected
// if it does not (two runs' leftovers colliding is a deployment bug
// worth surfacing, not papering over).
func (w *Worker) InstallFile(args *InstallFileArgs, reply *InstallFileReply) error {
	if args.Name == "" || len(args.Blocks) == 0 {
		return fmt.Errorf("remote: install needs a name and at least one block")
	}
	if f, err := w.store.File(args.Name); err == nil {
		if f.NumBlocks != len(args.Blocks) || f.BlockSize != args.BlockSize {
			return fmt.Errorf("remote: file %q already installed with %d×%dB blocks, refusing %d×%dB",
				args.Name, f.NumBlocks, f.BlockSize, len(args.Blocks), args.BlockSize)
		}
		return nil
	}
	if _, err := w.store.AddFile(args.Name, args.BlockSize, args.Blocks); err != nil {
		return fmt.Errorf("remote: installing %q: %w", args.Name, err)
	}
	return nil
}

// Stats implements the Stats RPC.
func (w *Worker) Stats(_ *StatsArgs, reply *StatsReply) error {
	st := w.store.Stats()
	reply.BlockReads = st.BlockReads
	reply.BytesScanned = st.BytesScanned
	reply.FailedReads = st.FailedReads
	reply.MapTasks = w.mapTasks.Load()
	reply.ReduceTasks = w.reduceTasks.Load()
	cs := w.store.CacheStats()
	reply.CacheHits = cs.Hits
	reply.CacheMisses = cs.Misses
	reply.CacheEvictions = cs.Evictions
	reply.CachePrefetches = cs.Prefetches
	reply.CachePrefetchFailed = cs.PrefetchFailed
	reply.CacheBytes = cs.Bytes
	reply.CachePinnedBytes = cs.PinnedBytes
	return nil
}

// Serve starts the worker's RPC server on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address. It serves until Close.
func (w *Worker) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	w.mu.Lock()
	w.ln = ln
	w.addr = ln.Addr().String()
	w.conns = make(map[net.Conn]struct{})
	w.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			if w.conns == nil {
				w.mu.Unlock()
				conn.Close()
				return
			}
			w.conns[conn] = struct{}{}
			w.mu.Unlock()
			go func() {
				srv.ServeConn(conn)
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close kills the worker: the control loop (if registered with a
// master) stops, and the listener and every live connection are torn
// down, so in-flight and future calls from masters fail with transport
// errors — the observable signature of a dead slave node.
func (w *Worker) Close() error {
	w.stopControl()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ln == nil {
		return nil
	}
	err := w.ln.Close()
	w.ln = nil
	for conn := range w.conns {
		conn.Close()
	}
	w.conns = nil
	return err
}
