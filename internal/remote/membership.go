package remote

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"s3sched/internal/comms"
)

// ControlConfig tunes the master's control plane: how long a silent
// worker stays suspect before it is declared dead, and how long a
// workerless round waits for a (re)join before being reported lost.
type ControlConfig struct {
	// SuspectAfter is silence that marks a worker suspect (one missed
	// heartbeat deadline). Suspect workers still receive tasks.
	SuspectAfter time.Duration
	// DeadAfter is silence that declares a worker dead: its task client
	// is closed, in-flight tasks fail over, and the engine sees a
	// worker-lost event. Must exceed SuspectAfter.
	DeadAfter time.Duration
	// RegisterTimeout bounds how long an accepted control connection
	// may sit silent before sending its registration frame.
	RegisterTimeout time.Duration
	// RejoinGrace is how long a round with zero live workers blocks
	// waiting for a registration before the round is declared lost and
	// requeued. The requeue loop re-enters the wait, so a full-cluster
	// restart has MaxRequeues × RejoinGrace to bring one worker back.
	RejoinGrace time.Duration
}

// DefaultControlConfig pairs with workers heartbeating at
// DefaultHeartbeat (1s).
var DefaultControlConfig = ControlConfig{
	SuspectAfter:    2500 * time.Millisecond,
	DeadAfter:       5 * time.Second,
	RegisterTimeout: 10 * time.Second,
	RejoinGrace:     10 * time.Second,
}

func (c ControlConfig) withDefaults() ControlConfig {
	d := DefaultControlConfig
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = d.SuspectAfter
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	if c.RegisterTimeout <= 0 {
		c.RegisterTimeout = d.RegisterTimeout
	}
	if c.RejoinGrace <= 0 {
		c.RejoinGrace = d.RejoinGrace
	}
	return c
}

// member is one worker's master-side record.
type member struct {
	id       string
	taskAddr string
	static   bool
	state    comms.MemberState
	client   *rpc.Client
	conn     *comms.Conn // control connection; nil for static members
	// gen increments per registration; control handlers carry the gen
	// they served so a stale handler (replaced by a re-registration)
	// cannot kill the new incarnation.
	gen        int
	joined     time.Time
	lastBeat   time.Time
	hbMisses   int64
	reconnects int64
	tasks      comms.WireStats
	caps       comms.Capabilities
}

// liveWorker is the placement view of a usable member.
type liveWorker struct {
	id     string
	client *rpc.Client
}

// membership is the master's lock-guarded cluster table. Joined and
// suspect members receive tasks; dead members are skipped until they
// re-register. Every transition appends a MemberEvent for the runtime
// engine to drain.
type membership struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members map[string]*member
	order   []string // registration order, for stable task placement
	events  []comms.MemberEvent
	version int // bumped on any change affecting the live set
}

func newMembership() *membership {
	t := &membership{members: make(map[string]*member)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// addStatic installs a boot-time worker that never heartbeats (the
// legacy -workers path). Static members are permanently non-dead:
// failover still skips them per-call when their connection breaks.
func (t *membership) addStatic(id, addr string, client *rpc.Client) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.members[id] = &member{
		id: id, taskAddr: addr, static: true,
		state: comms.Joined, client: client, joined: time.Now(),
	}
	t.order = append(t.order, id)
	t.version++
	t.events = append(t.events, comms.MemberEvent{
		Worker: id, Kind: comms.MemberRegistered, Detail: addr,
	})
	t.cond.Broadcast()
}

// register installs or replaces a dynamic worker. It returns the new
// registration generation.
func (t *membership) register(reg *comms.RegisterFrame, conn *comms.Conn, client *rpc.Client) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, known := t.members[reg.ID]
	if !known {
		m = &member{id: reg.ID, joined: time.Now()}
		t.members[reg.ID] = m
		t.order = append(t.order, reg.ID)
		t.events = append(t.events, comms.MemberEvent{
			Worker: reg.ID, Kind: comms.MemberRegistered, Detail: reg.TaskAddr,
		})
	} else {
		// Restart faster than detection: retire the previous
		// incarnation's connections before installing the new ones.
		if m.conn != nil {
			m.conn.Close()
		}
		if m.client != nil {
			m.client.Close()
		}
		m.reconnects++
		t.events = append(t.events, comms.MemberEvent{
			Worker: reg.ID, Kind: comms.MemberRejoined, Detail: reg.TaskAddr,
		})
	}
	m.taskAddr = reg.TaskAddr
	m.state = comms.Joined
	m.client = client
	m.conn = conn
	m.caps = reg.Capabilities
	m.lastBeat = time.Now()
	m.gen++
	t.version++
	t.cond.Broadcast()
	return m.gen
}

// current reports whether gen is still id's live registration.
func (t *membership) currentLocked(id string, gen int) (*member, bool) {
	m, ok := t.members[id]
	if !ok || m.gen != gen {
		return nil, false
	}
	return m, true
}

// beat records a heartbeat. A suspect worker heartbeating again is
// restored to joined.
func (t *membership) beat(id string, gen int, hb *comms.HeartbeatFrame) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.currentLocked(id, gen)
	if !ok {
		return false
	}
	m.lastBeat = time.Now()
	m.tasks = hb.Stats
	if m.state == comms.Suspect {
		m.state = comms.Joined
		t.version++
		t.events = append(t.events, comms.MemberEvent{
			Worker: id, Kind: comms.MemberRestored,
		})
		t.cond.Broadcast()
	}
	return true
}

// markSuspect records a missed heartbeat deadline. Every miss emits a
// MemberSuspect event (feeding the s3_heartbeat_misses_total counter);
// the joined → suspect state transition happens on the first.
func (t *membership) markSuspect(id string, gen int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.currentLocked(id, gen)
	if !ok {
		return false
	}
	m.hbMisses++
	t.events = append(t.events, comms.MemberEvent{
		Worker: id, Kind: comms.MemberSuspect, Misses: int(m.hbMisses),
	})
	if m.state == comms.Joined {
		m.state = comms.Suspect
		t.version++
	}
	return true
}

// markDead declares the worker's current incarnation dead and tears
// down its connections, so in-flight task RPCs fail over immediately.
func (t *membership) markDead(id string, gen int, reason error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.currentLocked(id, gen)
	if !ok || m.state == comms.Dead {
		return false
	}
	m.state = comms.Dead
	if m.conn != nil {
		m.conn.Close()
	}
	if m.client != nil {
		m.client.Close()
	}
	detail := ""
	if reason != nil {
		detail = reason.Error()
	}
	t.version++
	t.events = append(t.events, comms.MemberEvent{
		Worker: id, Kind: comms.MemberLost, Misses: int(m.hbMisses), Detail: detail,
	})
	t.cond.Broadcast()
	return true
}

// live returns the placement-ordered usable workers plus the table
// version the snapshot was taken at.
func (t *membership) live() (int, []liveWorker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version, t.liveLocked()
}

func (t *membership) liveLocked() []liveWorker {
	out := make([]liveWorker, 0, len(t.order))
	for _, id := range t.order {
		m := t.members[id]
		if m.state != comms.Dead && m.client != nil {
			out = append(out, liveWorker{id: m.id, client: m.client})
		}
	}
	return out
}

// waitLive blocks until at least n workers are live or the grace
// period lapses, returning the live snapshot either way.
func (t *membership) waitLive(n int, grace time.Duration) []liveWorker {
	deadline := time.Now().Add(grace)
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if lw := t.liveLocked(); len(lw) >= n {
			return lw
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return t.liveLocked()
		}
		// sync.Cond has no timed wait; poll on a short timer while
		// broadcasts short-circuit the common (registration) case.
		waker := time.AfterFunc(minDuration(remain, 20*time.Millisecond), t.cond.Broadcast)
		t.cond.Wait()
		waker.Stop()
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// takeEvents drains the pending membership deltas in order.
func (t *membership) takeEvents() []comms.MemberEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := t.events
	t.events = nil
	return ev
}

// liveCount reports the current number of non-dead workers.
func (t *membership) liveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.liveLocked())
}

// snapshot renders the whole table (including dead members) for the
// status server's GET /cluster.
func (t *membership) snapshot() []comms.WorkerInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]comms.WorkerInfo, 0, len(t.order))
	for _, id := range t.order {
		m := t.members[id]
		info := comms.WorkerInfo{
			ID:              m.id,
			TaskAddr:        m.taskAddr,
			State:           m.state.String(),
			Static:          m.static,
			HeartbeatMisses: m.hbMisses,
			Reconnects:      m.reconnects,
			Tasks:           m.tasks,
		}
		if !m.static {
			since := m.lastBeat
			if since.IsZero() {
				since = m.joined
			}
			info.SinceHeartbeat = time.Since(since).Seconds()
			if m.conn != nil {
				info.Control = m.conn.Stats()
			}
		}
		out = append(out, info)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// closeAll tears down every member's connections (master shutdown).
func (t *membership) closeAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, m := range t.members {
		if m.conn != nil {
			m.conn.Close()
			m.conn = nil
		}
		if m.client != nil {
			if err := m.client.Close(); err != nil && first == nil && m.state != comms.Dead {
				first = err
			}
			m.client = nil
		}
		m.state = comms.Dead
	}
	t.version++
	t.cond.Broadcast()
	return first
}

// ListenControl starts the master's control-plane listener: workers
// dial addr, register, and heartbeat. Returns the bound address. Call
// once, before driving rounds; Close stops it.
func (m *Master) ListenControl(addr string, cfg ControlConfig) (string, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: control listener on %s: %w", addr, err)
	}
	m.mu.Lock()
	if m.ctl != nil {
		m.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("remote: control listener already running")
	}
	m.ctl = ln
	m.ctlCfg = cfg
	m.mu.Unlock()
	m.hasCtl.Store(true)
	m.ctlWG.Add(1)
	go func() {
		defer m.ctlWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			m.ctlWG.Add(1)
			go func() {
				defer m.ctlWG.Done()
				m.serveControl(comms.NewConn(conn), cfg)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// WaitForWorkers blocks until at least n workers are live, or fails
// after timeout. Masters call it between ListenControl and the first
// round so the segment plan sees a populated cluster.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	if got := len(m.members.waitLive(n, timeout)); got < n {
		return fmt.Errorf("remote: %d of %d workers registered within %v", got, n, timeout)
	}
	return nil
}

// serveControl owns one worker's control connection: registration
// handshake, dial-back of the task client, then the heartbeat deadline
// loop that walks the worker through joined → suspect → dead.
func (m *Master) serveControl(conn *comms.Conn, cfg ControlConfig) {
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(cfg.RegisterTimeout)); err != nil {
		return
	}
	env, err := conn.Recv()
	if err != nil || env.Kind != comms.FrameRegister || env.Register == nil {
		return // not a protocol peer; drop silently
	}
	reg := env.Register
	if reg.ID == "" || reg.TaskAddr == "" {
		conn.Send(comms.Envelope{Kind: comms.FrameAck, Ack: &comms.AckFrame{
			OK: false, Msg: "registration needs an id and a task address",
		}})
		return
	}
	// Dial back the worker's task server before admitting it: a worker
	// the master cannot reach is useless to the round loop.
	client, err := rpc.Dial("tcp", reg.TaskAddr)
	if err != nil {
		conn.Send(comms.Envelope{Kind: comms.FrameAck, Ack: &comms.AckFrame{
			OK: false, Msg: fmt.Sprintf("dialing task address %s: %v", reg.TaskAddr, err),
		}})
		return
	}
	gen := m.members.register(reg, conn, client)
	// Replay derived files after the member is visible (so a concurrent
	// InstallFile broadcast cannot slip between snapshot and join — the
	// worst case is a harmless idempotent double install) and before the
	// ack (so an admitted worker always holds every pipeline input).
	if err := m.pushInstalled(liveWorker{id: reg.ID, client: client}); err != nil {
		m.members.markDead(reg.ID, gen, err)
		return
	}
	if err := conn.Send(comms.Envelope{Kind: comms.FrameAck, Ack: &comms.AckFrame{OK: true}}); err != nil {
		m.members.markDead(reg.ID, gen, err)
		return
	}

	lastBeat := time.Now()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(cfg.SuspectAfter)); err != nil {
			m.members.markDead(reg.ID, gen, err)
			return
		}
		env, err := conn.Recv()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if !m.members.markSuspect(reg.ID, gen) {
					return // replaced by a newer registration
				}
				if time.Since(lastBeat) >= cfg.DeadAfter {
					m.members.markDead(reg.ID, gen, fmt.Errorf("no heartbeat for %v", cfg.DeadAfter))
					return
				}
				continue
			}
			// Connection broke: the worker process died or the network
			// cut out. Either way this incarnation is gone.
			m.members.markDead(reg.ID, gen, err)
			return
		}
		if env.Kind != comms.FrameHeartbeat || env.Heartbeat == nil {
			continue // tolerate unknown frames from newer workers
		}
		lastBeat = time.Now()
		if !m.members.beat(reg.ID, gen, env.Heartbeat) {
			return // replaced
		}
		if err := conn.Send(comms.Envelope{Kind: comms.FrameAck, Ack: &comms.AckFrame{OK: true}}); err != nil {
			m.members.markDead(reg.ID, gen, err)
			return
		}
	}
}
