package remote

import (
	"fmt"
	"net"
	"os"
	"time"

	"s3sched/internal/comms"
)

// RegisterOptions configures a worker's control-plane session with a
// master. The zero value is usable: identity and advertised address
// derive from the bound task listener, heartbeats default to
// DefaultHeartbeat, and dialing retries forever on DefaultBackoff.
type RegisterOptions struct {
	// ID is the worker's stable identity. Re-registering the same ID
	// after a restart replaces the previous incarnation in the master's
	// membership table. Defaults to "worker@<task address>".
	ID string
	// TaskAddr is the address the master dials back for task RPCs.
	// Defaults to the bound listen address, with an unspecified host
	// (0.0.0.0 / ::) replaced by the machine hostname so it stays
	// reachable across containers.
	TaskAddr string
	// Heartbeat is the interval between liveness frames (default
	// DefaultHeartbeat). The master's deadlines should allow at least
	// two missed beats before declaring the worker dead.
	Heartbeat time.Duration
	// Backoff paces reconnect attempts (default comms.DefaultBackoff).
	Backoff comms.Backoff
	// MaxDials bounds consecutive failed dial attempts per reconnect
	// cycle; 0 retries forever (a worker outliving a master restart).
	MaxDials int
}

// DefaultHeartbeat is the default worker heartbeat interval.
const DefaultHeartbeat = time.Second

// Register puts the worker in registration mode: a background loop
// dials the master's control address with exponential backoff, sends a
// registration frame (identity, task address, block inventory,
// capabilities), then heartbeats every opts.Heartbeat. Any session
// error — master restart, network cut — tears the session down and the
// loop re-dials and re-registers, so a worker survives both its own
// restart (its supervisor calls Register again) and the master's.
// Serve must have been called first; Close stops the loop.
func (w *Worker) Register(master string, opts RegisterOptions) error {
	if master == "" {
		return fmt.Errorf("remote: register needs a master address")
	}
	w.mu.Lock()
	bound := w.addr
	w.mu.Unlock()
	if bound == "" {
		return fmt.Errorf("remote: register before Serve — the master needs a task address to dial back")
	}
	if opts.TaskAddr == "" {
		opts.TaskAddr = advertiseAddr(bound)
	}
	if opts.ID == "" {
		opts.ID = "worker@" + opts.TaskAddr
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}

	w.ctlMu.Lock()
	defer w.ctlMu.Unlock()
	if w.ctlStop != nil {
		return fmt.Errorf("remote: worker already registered with a master")
	}
	w.ctlStop = make(chan struct{})
	w.ctlDone = make(chan struct{})
	// The channels are handed to the loop by value: stopControl nils
	// the struct fields under ctlMu, so the loop must never read them
	// through w.
	go w.controlLoop(master, opts, w.ctlStop, w.ctlDone)
	return nil
}

// Registrations reports how many times the worker completed a
// registration handshake (>1 means it reconnected).
func (w *Worker) Registrations() int64 { return w.registrations.Load() }

// Heartbeats reports how many acknowledged heartbeats the worker sent.
func (w *Worker) Heartbeats() int64 { return w.heartbeats.Load() }

// stopControl terminates the control loop, if one is running.
func (w *Worker) stopControl() {
	w.ctlMu.Lock()
	stop, done := w.ctlStop, w.ctlDone
	w.ctlStop, w.ctlDone = nil, nil
	w.ctlMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// controlLoop is the reconnect-forever session driver.
func (w *Worker) controlLoop(master string, opts RegisterOptions, stop, done chan struct{}) {
	defer close(done)
	failures := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		conn, err := comms.DialBackoff(master, opts.Backoff, opts.MaxDials, stop)
		if err != nil {
			return // shutting down, or MaxDials exhausted
		}
		err = w.controlSession(conn, opts, stop)
		conn.Close()
		if err == nil {
			return // clean shutdown
		}
		// Pace re-registration after a failed session so a rejecting
		// master is not hammered in a tight loop.
		failures++
		select {
		case <-stop:
			return
		case <-time.After(opts.Backoff.Delay(failures)):
		}
	}
}

// controlSession runs one registration + heartbeat session to
// completion. It returns nil only on clean shutdown; any error means
// the caller should reconnect.
func (w *Worker) controlSession(conn *comms.Conn, opts RegisterOptions, stop <-chan struct{}) error {
	// Unblock the pending Recv when shutdown lands mid-session.
	sessionOver := make(chan struct{})
	defer close(sessionOver)
	go func() {
		select {
		case <-stop:
			conn.Close()
		case <-sessionOver:
		}
	}()

	reg := &comms.RegisterFrame{
		ID:       opts.ID,
		TaskAddr: opts.TaskAddr,
		Blocks:   w.store.Inventory(),
		Capabilities: comms.Capabilities{
			Factories: w.registry.Names(),
		},
	}
	if c := w.store.Cache(); c != nil {
		reg.Capabilities.CacheBytes = c.Budget()
	}
	if err := conn.Send(comms.Envelope{Kind: comms.FrameRegister, Register: reg}); err != nil {
		return err
	}
	ack, err := w.awaitAck(conn, opts.Heartbeat)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("remote: master rejected registration: %s", ack.Msg)
	}
	w.registrations.Add(1)

	ticker := time.NewTicker(opts.Heartbeat)
	defer ticker.Stop()
	var seq int64
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
		seq++
		hb := &comms.HeartbeatFrame{Seq: seq, Stats: w.wireStats()}
		if err := conn.Send(comms.Envelope{Kind: comms.FrameHeartbeat, Heartbeat: hb}); err != nil {
			return err
		}
		if _, err := w.awaitAck(conn, opts.Heartbeat); err != nil {
			return err
		}
		w.heartbeats.Add(1)
	}
}

// awaitAck reads the master's next frame, bounded by a deadline of
// several heartbeat intervals — a master silent that long is as dead
// as a closed connection.
func (w *Worker) awaitAck(conn *comms.Conn, heartbeat time.Duration) (*comms.AckFrame, error) {
	if err := conn.SetReadDeadline(time.Now().Add(5 * heartbeat)); err != nil {
		return nil, err
	}
	env, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if env.Kind != comms.FrameAck || env.Ack == nil {
		return nil, fmt.Errorf("remote: expected ack, got %s frame", env.Kind)
	}
	return env.Ack, nil
}

// wireStats snapshots the worker's self-reported ledger for heartbeats.
func (w *Worker) wireStats() comms.WireStats {
	st := w.store.Stats()
	cs := w.store.CacheStats()
	return comms.WireStats{
		BlockReads:          st.BlockReads,
		BytesScanned:        st.BytesScanned,
		FailedReads:         st.FailedReads,
		MapTasks:            w.mapTasks.Load(),
		ReduceTasks:         w.reduceTasks.Load(),
		CacheHits:           cs.Hits,
		CacheMisses:         cs.Misses,
		CacheEvictions:      cs.Evictions,
		CachePrefetches:     cs.Prefetches,
		CachePrefetchFailed: cs.PrefetchFailed,
		CacheBytes:          cs.Bytes,
		CachePinnedBytes:    cs.PinnedBytes,
	}
}

// advertiseAddr rewrites an unspecified listen host (0.0.0.0, ::, or
// empty) to the machine hostname so the advertised task address is
// dialable from other machines/containers.
func advertiseAddr(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	ip := net.ParseIP(host)
	if host == "" || (ip != nil && ip.IsUnspecified()) {
		if h, herr := os.Hostname(); herr == nil && h != "" {
			return net.JoinHostPort(h, port)
		}
	}
	return bound
}
