package remote

import (
	"fmt"
	"net/rpc"
	"time"

	"s3sched/internal/journal"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
)

// Durability and watchdog surface of the master.
//
// The master owns two of the journal's record kinds, because only it
// sees the corresponding commit points:
//
//   - shuffle-committed: appended inside ExecRound's merge section, the
//     moment a segment's map output enters the in-memory shuffle state.
//     It always reaches the journal before the engine's round-committed
//     record for the same round (the engine commits after ExecRound
//     returns), so a replayed snapshot never counts a segment whose
//     shuffle record is missing. A crash between the two re-executes
//     the segment's maps; the per-(job,segment) ledger makes the re-run
//     a no-op merge.
//   - job-result: appended in finishJob before the reduce output is
//     published, so a completed job's output survives a crash that
//     lands after the reduce but before the engine's job-done record.
//
// SetJournal/SetTaskDeadline are boot-time configuration: call them
// before the first round, like SetTrace.

// SetJournal installs the write-ahead journal the master appends its
// shuffle and result commits to. nil disables journaling.
func (m *Master) SetJournal(j *journal.Journal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journal = j
}

// SetTaskDeadline bounds every Worker.ExecMap / Worker.ExecReduce call.
// A call that does not return within d is abandoned with a
// *TaskDeadlineError — classified as a transport failure, so the task
// fails over to the next live worker. Zero disables the watchdog.
func (m *Master) SetTaskDeadline(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("remote: task deadline must be non-negative, got %v", d))
	}
	m.taskDeadline = d
}

// callWorker issues one worker RPC, enforcing the task deadline when
// one is configured. net/rpc has no native call timeout, so the
// watchdog races the asynchronous call against a timer; on expiry the
// reply (if it ever arrives) is discarded by the rpc client.
func (m *Master) callWorker(w liveWorker, method string, args, reply any) error {
	if m.taskDeadline <= 0 {
		return w.client.Call(method, args, reply)
	}
	call := w.client.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(m.taskDeadline)
	defer timer.Stop()
	select {
	case c := <-call.Done:
		return c.Error
	case <-timer.C:
		err := &TaskDeadlineError{Worker: w.id, Method: method, Deadline: m.taskDeadline}
		m.log.Addf(m.clock.Now(), trace.TaskDeadlineExceeded, -1, -1, "%v", err)
		return err
	}
}

// appendShuffle journals one freshly merged segment's map output.
// Called with m.mu held (the journal has its own lock; holding m.mu
// across the append keeps this record ordered against the job's later
// result record).
func (m *Master) appendShuffle(id scheduler.JobID, segment int, parts [][]mapreduce.KV) error {
	if m.journal == nil {
		return nil
	}
	return m.journal.AppendRecord(journal.KindShuffleCommitted, journal.ShuffleCommittedRecord{
		Job:     id,
		Segment: segment,
		Parts:   parts,
	})
}

// appendResult journals a completed job's reduce output. Called with
// m.mu held.
func (m *Master) appendResult(id scheduler.JobID, output []mapreduce.KV) error {
	if m.journal == nil {
		return nil
	}
	return m.journal.AppendRecord(journal.KindJobResult, journal.JobResultRecord{Job: id, Output: output})
}

// RestoreShuffle re-installs one journaled segment's map output for a
// job — the recovery path's counterpart of ExecRound's merge section.
// The job must already be registered (RegisterJob). Call before the
// engine starts.
func (m *Master) RestoreShuffle(id scheduler.JobID, segment int, parts [][]mapreduce.KV) error {
	ref, ok := m.jobRef(id)
	if !ok {
		return fmt.Errorf("remote: restoring shuffle for unregistered job %d", id)
	}
	m.ensureJob(id, ref)
	m.mu.Lock()
	defer m.mu.Unlock()
	dst := m.partitions[id]
	if len(parts) != len(dst) {
		return fmt.Errorf("remote: job %d shuffle record has %d partitions, job declares %d", id, len(parts), len(dst))
	}
	segs := m.mergedSegs[id]
	if segs == nil {
		segs = make(map[int]bool)
		m.mergedSegs[id] = segs
	}
	if segs[segment] {
		return fmt.Errorf("remote: job %d segment %d restored twice", id, segment)
	}
	segs[segment] = true
	for p, kvs := range parts {
		dst[p] = append(dst[p], kvs...)
	}
	return nil
}

// RestoreResult re-installs a completed job's journaled output so the
// admission API can serve it after a restart.
func (m *Master) RestoreResult(id scheduler.JobID, output []mapreduce.KV) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.results[id] = output
	delete(m.partitions, id)
	delete(m.mergedSegs, id)
}

// JobOutput returns one completed job's merged output, if present.
// Implements status.ResultSource.
func (m *Master) JobOutput(id scheduler.JobID) ([]mapreduce.KV, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kvs, ok := m.results[id]
	return kvs, ok
}
