package remote

import (
	"fmt"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

const (
	testBlocks    = 12
	testBlockSize = 2048
	testSeed      = 31
)

// startCluster boots n workers, each with its own locally generated
// copy of the corpus (the generation IS the local disk), and a master
// connected to all of them.
func startCluster(t *testing.T, n int, jobs map[scheduler.JobID]JobRef) (*Master, []*Worker) {
	t.Helper()
	reg := NewStandardRegistry()
	var addrs []string
	var workers []*Worker
	for i := 0; i < n; i++ {
		store := dfs.MustStore(1, 1)
		if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
			t.Fatal(err)
		}
		w := NewWorker(store, reg)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	m, err := Dial(addrs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return m, workers
}

// plan builds the shared segment plan the scheduler needs; the master
// itself never touches block contents.
func testPlan(t *testing.T) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(3, 1)
	f, err := store.AddMetaFile("corpus", testBlocks, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dfs.PlanSegments(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wordcountRefs(n int) map[scheduler.JobID]JobRef {
	out := make(map[scheduler.JobID]JobRef, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		id := scheduler.JobID(i + 1)
		out[id] = JobRef{
			Name:      fmt.Sprintf("wc-%s", prefixes[i]),
			Factory:   "wordcount",
			Param:     prefixes[i],
			NumReduce: 2,
		}
	}
	return out
}

func TestDistributedS3MatchesLocalEngine(t *testing.T) {
	jobs := wordcountRefs(2)
	master, _ := startCluster(t, 3, jobs)
	master.SetTimeScale(1e6)

	plan := testPlan(t)
	s3 := core.New(plan, nil)
	res, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "corpus"}, At: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != 2 || len(res.Metrics.Incomplete()) != 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}

	// Reference: same jobs on the local in-process engine.
	store := dfs.MustStore(3, 1)
	if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	prefixes := workload.DistinctPrefixes(2)
	for i := 0; i < 2; i++ {
		id := scheduler.JobID(i + 1)
		ref, err := engine.RunJob(workload.WordCountJob("ref", "corpus", prefixes[i], 2))
		if err != nil {
			t.Fatal(err)
		}
		got := master.Results()[id]
		if fmt.Sprint(got) != fmt.Sprint(ref.Output) {
			t.Errorf("job %d: distributed output differs from local engine", id)
		}
		if len(got) == 0 {
			t.Errorf("job %d: empty output", id)
		}
	}
}

func TestDistributedLocalityPlacement(t *testing.T) {
	jobs := wordcountRefs(1)
	master, workers := startCluster(t, 3, jobs)
	master.SetTimeScale(1e6)

	plan := testPlan(t)
	s3 := core.New(plan, nil)
	if _, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := master.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	// 12 blocks round-robin over 3 workers: 4 block reads each, never
	// more — each worker scans only its own blocks.
	for i, st := range stats {
		if st.BlockReads != 4 {
			t.Errorf("worker %d read %d blocks, want 4 (locality-first placement)", i, st.BlockReads)
		}
		if st.MapTasks != 4 {
			t.Errorf("worker %d ran %d map tasks, want 4", i, st.MapTasks)
		}
	}
	_ = workers
}

func TestDistributedSharedScan(t *testing.T) {
	jobs := wordcountRefs(3)
	master, _ := startCluster(t, 3, jobs)
	master.SetTimeScale(1e6)

	plan := testPlan(t)
	s3 := core.New(plan, nil)
	if _, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 3, File: "corpus"}, At: 0},
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := master.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	var reads, tasks int64
	for _, st := range stats {
		reads += st.BlockReads
		tasks += st.MapTasks
	}
	if reads != testBlocks {
		t.Errorf("cluster block reads = %d, want %d (one shared pass for 3 jobs)", reads, testBlocks)
	}
	if tasks != 3*testBlocks {
		t.Errorf("map tasks = %d, want %d", tasks, 3*testBlocks)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewStandardRegistry()
	if _, _, _, err := reg.Build("nope", ""); err == nil {
		t.Error("unknown factory should fail")
	}
	if _, _, _, err := reg.Build("selection", "notanumber"); err == nil {
		t.Error("bad selection param should fail")
	}
	if _, _, _, err := reg.Build("selection", "5"); err != nil {
		t.Errorf("selection build: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	reg.Register("wordcount", nil)
}

func TestWorkerErrors(t *testing.T) {
	store := dfs.MustStore(1, 1)
	if _, err := workload.AddTextFile(store, "corpus", 2, 512, 1); err != nil {
		t.Fatal(err)
	}
	w := NewWorker(store, NewStandardRegistry())
	var mr MapTaskReply
	if err := w.ExecMap(&MapTaskArgs{File: "corpus", BlockIndex: 0}, &mr); err == nil {
		t.Error("map task with no jobs should fail")
	}
	args := &MapTaskArgs{File: "ghost", BlockIndex: 0, Jobs: []JobRef{{Factory: "wordcount", Param: "t", NumReduce: 1}}}
	if err := w.ExecMap(args, &mr); err == nil {
		t.Error("unknown file should fail")
	}
	var rr ReduceTaskReply
	if err := w.ExecReduce(&ReduceTaskArgs{Job: JobRef{Factory: "nope"}}, &rr); err == nil {
		t.Error("unknown factory should fail")
	}
	if w.Close() != nil {
		t.Error("closing an unstarted worker should be a no-op")
	}
}

func TestMasterErrors(t *testing.T) {
	if _, err := Dial(nil, nil); err == nil {
		t.Error("no workers should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable worker should fail")
	}
	jobs := wordcountRefs(1)
	master, _ := startCluster(t, 1, jobs)
	// Round referencing an unregistered job.
	r := scheduler.Round{
		Blocks: []dfs.BlockID{{File: "corpus", Index: 0}},
		Jobs:   []scheduler.JobMeta{{ID: 99, File: "corpus"}},
	}
	if _, err := master.ExecRound(r); err == nil || !strings.Contains(err.Error(), "no JobRef") {
		t.Errorf("err = %v, want missing JobRef", err)
	}
}

func TestTaskAPIPrimitives(t *testing.T) {
	parts, err := mapreduce.MapBlockForJob(dfs.BlockID{File: "x"}, []byte("a b a"),
		workload.PatternCountMapper{Prefix: "a"}, workload.SumReducer{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 1 { // combiner folded "a a" into one record
		t.Errorf("records = %d, want 1", total)
	}
	if _, err := mapreduce.MapBlockForJob(dfs.BlockID{}, nil, nil, nil, 1); err == nil {
		t.Error("nil mapper should fail")
	}
	if _, err := mapreduce.MapBlockForJob(dfs.BlockID{}, nil, workload.PatternCountMapper{}, nil, 0); err == nil {
		t.Error("zero width should fail")
	}
	out, err := mapreduce.ReducePartition([]mapreduce.KV{{Key: "b", Value: "1"}, {Key: "a", Value: "1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Key != "a" {
		t.Errorf("identity reduce not sorted: %v", out)
	}
	merged := mapreduce.MergeSorted([][]mapreduce.KV{{{Key: "z", Value: "1"}}, {{Key: "a", Value: "2"}}})
	if merged[0].Key != "a" || merged[1].Key != "z" {
		t.Errorf("MergeSorted = %v", merged)
	}
}

func TestWorkerFailover(t *testing.T) {
	jobs := wordcountRefs(2)
	master, workers := startCluster(t, 3, jobs)
	master.SetTimeScale(1e6)

	// Kill worker 1 before the run: its blocks fail over to the
	// others, which regenerate them locally.
	if err := workers[1].Close(); err != nil {
		t.Fatal(err)
	}

	plan := testPlan(t)
	s3 := core.New(plan, nil)
	res, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "corpus"}, At: 0},
	})
	if err != nil {
		t.Fatalf("run with dead worker: %v", err)
	}
	if len(res.Metrics.Incomplete()) != 0 {
		t.Fatalf("incomplete: %v", res.Metrics.Incomplete())
	}
	if master.Failovers() == 0 {
		t.Error("expected failovers with a dead worker")
	}
	// Results still correct: compare against the local engine.
	store := dfs.MustStore(3, 1)
	if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	prefixes := workload.DistinctPrefixes(2)
	for i := 0; i < 2; i++ {
		ref, err := engine.RunJob(workload.WordCountJob("ref", "corpus", prefixes[i], 2))
		if err != nil {
			t.Fatal(err)
		}
		got := master.Results()[scheduler.JobID(i+1)]
		if fmt.Sprint(got) != fmt.Sprint(ref.Output) {
			t.Errorf("job %d: failover changed results", i+1)
		}
	}
}

func TestTaskErrorIsNotRetried(t *testing.T) {
	// A task-level error (bad factory param) must propagate, not spin
	// through every worker.
	jobs := map[scheduler.JobID]JobRef{
		1: {Name: "bad", Factory: "selection", Param: "notanumber", NumReduce: 1},
	}
	master, _ := startCluster(t, 2, jobs)
	master.SetTimeScale(1e6)
	plan := testPlan(t)
	s3 := core.New(plan, nil)
	_, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
	})
	if err == nil {
		t.Fatal("bad job parameter should fail the run")
	}
	if master.Failovers() != 0 {
		t.Errorf("task-level error caused %d failovers; want 0", master.Failovers())
	}
}

func TestConcurrentMastersShareWorkers(t *testing.T) {
	// Two masters drive disjoint job sets against the same worker
	// pool concurrently; both must complete with correct results.
	reg := NewStandardRegistry()
	var addrs []string
	var workers []*Worker
	for i := 0; i < 2; i++ {
		store := dfs.MustStore(1, 1)
		if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
			t.Fatal(err)
		}
		w := NewWorker(store, reg)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	runOne := func(prefix string) (string, error) {
		jobs := map[scheduler.JobID]JobRef{
			1: {Name: "wc-" + prefix, Factory: "wordcount", Param: prefix, NumReduce: 2},
		}
		master, err := Dial(addrs, jobs)
		if err != nil {
			return "", err
		}
		defer master.Close()
		master.SetTimeScale(1e6)
		planStore := dfs.MustStore(2, 1)
		f, err := planStore.AddMetaFile("corpus", testBlocks, testBlockSize)
		if err != nil {
			return "", err
		}
		plan, err := dfs.PlanSegments(f, 2)
		if err != nil {
			return "", err
		}
		if _, err := driver.Run(core.New(plan, nil), master, []driver.Arrival{
			{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		}); err != nil {
			return "", err
		}
		return fmt.Sprint(master.Results()[1]), nil
	}

	type out struct {
		s   string
		err error
	}
	ch := make(chan out, 2)
	go func() { s, err := runOne("t"); ch <- out{s, err} }()
	go func() { s, err := runOne("a"); ch <- out{s, err} }()
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.s == "" || o.s == "[]" {
			t.Error("empty result from concurrent master")
		}
	}
}
