package remote

import (
	"fmt"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// TestWorkerCloseRacesInflightRPCs hammers a worker with map and reduce
// calls from several clients while Close fires concurrently. The
// specified behavior is narrow — every call either succeeds or fails
// with a transport error, and nothing panics, deadlocks, or trips the
// race detector — but that is exactly the window the master's failover
// path lives in.
func TestWorkerCloseRacesInflightRPCs(t *testing.T) {
	for round := 0; round < 5; round++ {
		w := NewWorker(testStore(t), NewStandardRegistry())
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		const clients = 4
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < clients; c++ {
			cl, err := rpc.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(cl *rpc.Client, c int) {
				defer wg.Done()
				defer cl.Close()
				<-start
				for i := 0; i < 50; i++ {
					var mr MapTaskReply
					err := cl.Call("Worker.ExecMap", &MapTaskArgs{
						File: "corpus", BlockIndex: i % testBlocks,
						Jobs: []JobRef{{Factory: "wordcount", Param: "t", NumReduce: 1}},
					}, &mr)
					if err != nil {
						if !isTransportError(err) {
							t.Errorf("client %d: non-transport error racing Close: %v", c, err)
						}
						return
					}
				}
			}(cl, c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round) * 200 * time.Microsecond)
			if err := w.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		// Close is idempotent even after the race.
		if err := w.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
	}
}

// TestWorkerCloseRacesRegistration closes a worker while its control
// loop is mid-session (and mid-reconnect), covering the accept-loop and
// control-loop shutdown edges.
func TestWorkerCloseRacesRegistration(t *testing.T) {
	master := NewMaster(nil)
	ctlAddr, err := master.ListenControl("127.0.0.1:0", testCtlConfig)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	for i := 0; i < 8; i++ {
		w := NewWorker(testStore(t), NewStandardRegistry())
		if _, err := w.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := w.Register(ctlAddr, RegisterOptions{ID: fmt.Sprintf("racer-%d", i), Heartbeat: testHeartbeat}); err != nil {
			t.Fatal(err)
		}
		// Close at staggered offsets: sometimes before the handshake
		// lands, sometimes after heartbeats have started.
		time.Sleep(time.Duration(i) * time.Millisecond)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentRegisterJobDuringExecRound admits new jobs while rounds
// are executing — the live-admission daemon's steady state. Every
// registration must land without racing the in-flight round's ref
// lookups.
func TestConcurrentRegisterJobDuringExecRound(t *testing.T) {
	jobs := wordcountRefs(1)
	master, _ := startCluster(t, 2, jobs)
	master.SetTimeScale(1e6)

	stop := make(chan struct{})
	var admitWG sync.WaitGroup
	admitWG.Add(1)
	go func() {
		defer admitWG.Done()
		for next := scheduler.JobID(100); ; next++ {
			select {
			case <-stop:
				return
			default:
			}
			err := master.RegisterJob(next, JobRef{
				Name: fmt.Sprintf("late-%d", next), Factory: "wordcount", Param: "z", NumReduce: 2,
			})
			if err != nil {
				t.Errorf("concurrent RegisterJob: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for i := 0; i < 6; i++ {
		r := scheduler.Round{
			Segment: i % 3,
			Jobs:    []scheduler.JobMeta{{ID: 1, File: "corpus"}},
		}
		for b := 0; b < 4; b++ {
			r.Blocks = append(r.Blocks, dfs.BlockID{File: "corpus", Index: (i*4 + b) % testBlocks})
		}
		if _, err := master.ExecRound(r); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	close(stop)
	admitWG.Wait()
}
