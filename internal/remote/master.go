package remote

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"s3sched/internal/comms"
	"s3sched/internal/journal"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Master drives scheduler rounds on remote workers. It implements
// driver.Executor, so the same driver loop that runs the in-process
// engine and the simulator also runs the distributed cluster.
//
// Workers reach the master two ways:
//
//   - Dynamic membership (ListenControl): workers dial the master,
//     register with identity + inventory + capabilities, heartbeat on
//     a deadline, and survive restarts by re-registering. The master
//     keeps a joined/suspect/dead membership table whose deltas feed
//     the runtime engine (worker-lost/worker-rejoined events) and the
//     status server's GET /cluster.
//   - Static dial (Dial): the legacy boot-time -workers list; members
//     never leave the table.
//
// Task placement is locality-first over the live membership snapshot:
// block i is mapped on live worker i mod W; reduce partition p of a
// job runs on live worker p mod W. A worker missing from the snapshot
// (declared dead) simply stops receiving tasks; a task failing with a
// transport error rotates to the next live worker, exactly like
// re-running against another HDFS replica. A round that fails on every
// live worker is reported as a *scheduler.RoundLostError in dynamic
// mode, which the runtime requeues — so a full-cluster outage becomes
// a requeue-until-rejoin loop rather than a dead run.
type Master struct {
	members *membership
	// timeScale converts measured wall seconds to virtual seconds.
	timeScale float64
	clock     *vclock.Wall
	// log, when non-nil, records one TaskDispatched event per issued
	// RPC, tagged with a correlation id the worker echoes into its own
	// trace. roundSeq numbers rounds for those ids.
	log      *trace.Log
	roundSeq int

	// hasCtl flips once when ListenControl starts; it gates the
	// lost-round (requeue) error contract, which only a dynamic
	// cluster can make progress on.
	hasCtl atomic.Bool
	ctlWG  sync.WaitGroup

	// taskDeadline, when positive, bounds each worker exec RPC; expiry
	// is classified as a transport failure (see SetTaskDeadline).
	taskDeadline time.Duration

	mu sync.Mutex
	// ctl is the control-plane listener (nil in static mode).
	ctl    net.Listener
	ctlCfg ControlConfig
	jobs   map[scheduler.JobID]JobRef
	// partitions[job][p] accumulates job's shuffle records; mergedSegs
	// remembers which segments already contributed, so a requeued
	// round's re-executed map stage cannot double-count.
	partitions map[scheduler.JobID][][]mapreduce.KV
	mergedSegs map[scheduler.JobID]map[int]bool
	results    map[scheduler.JobID][]mapreduce.KV
	failovers  int
	// installed holds every derived file pushed cluster-wide (DAG stage
	// outputs), in installation order; a (re)registering worker gets
	// them replayed during its handshake, so membership churn cannot
	// strand a pipeline stage on a worker missing its input.
	installed    map[string]*InstallFileArgs
	installOrder []string
	// journal, when non-nil, receives shuffle-committed / job-result
	// records at the corresponding commit points (see durable.go).
	journal *journal.Journal
}

// NewMaster builds a master with no workers yet: call ListenControl
// and let workers register (optionally gating on WaitForWorkers).
// jobs pre-registers the batch workload; more may be registered later
// with RegisterJob — the live-admission path.
func NewMaster(jobs map[scheduler.JobID]JobRef) *Master {
	m := &Master{
		members:    newMembership(),
		jobs:       make(map[scheduler.JobID]JobRef, len(jobs)),
		timeScale:  1,
		clock:      vclock.NewWall(),
		partitions: make(map[scheduler.JobID][][]mapreduce.KV),
		mergedSegs: make(map[scheduler.JobID]map[int]bool),
		results:    make(map[scheduler.JobID][]mapreduce.KV),
		installed:  make(map[string]*InstallFileArgs),
	}
	for id, ref := range jobs {
		m.jobs[id] = ref
	}
	return m
}

// Dial connects a master to a fixed list of worker addresses — the
// static topology. Workers joined this way never heartbeat and never
// leave the membership table; per-task failover still skips the ones
// whose connections break.
func Dial(addrs []string, jobs map[scheduler.JobID]JobRef) (*Master, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: master needs at least one worker")
	}
	m := NewMaster(jobs)
	for i, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("remote: dialing worker %s: %w", addr, err)
		}
		m.members.addStatic(fmt.Sprintf("static-%d", i), addr, c)
	}
	return m, nil
}

// SetTimeScale sets the virtual-seconds-per-wall-second factor.
func (m *Master) SetTimeScale(scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("remote: time scale must be positive, got %v", scale))
	}
	m.timeScale = scale
}

// SetTrace installs a trace log recording every dispatched task with
// its correlation id. nil clears it (and stops sending Corr to
// workers). Call before the first round.
func (m *Master) SetTrace(log *trace.Log) { m.log = log }

// RegisterJob makes a live-submitted job runnable: subsequent rounds
// including id ship ref to the workers with each task (workers need no
// pre-registration — every RPC carries its JobRefs, so registering at
// the master is what forwards the submission cluster-wide). Safe to
// call from an admission goroutine while a round is in flight.
// Re-registering an id is an error.
func (m *Master) RegisterJob(id scheduler.JobID, ref JobRef) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.jobs[id]; dup {
		return fmt.Errorf("remote: job %d already registered", id)
	}
	m.jobs[id] = ref
	return nil
}

// InstallFile publishes a derived file cluster-wide: it is recorded
// for replay to future registrants, then pushed to every currently
// live worker. Re-installing the same name with identical geometry is
// a no-op (recovery re-derives stage outputs idempotently); a geometry
// conflict is an error. A push failing with a transport error is
// tolerated — that worker is dying or restarting, and its next
// registration handshake replays the file — while a task-level
// rejection (the worker holds a conflicting file) propagates.
func (m *Master) InstallFile(name string, blockSize int64, blocks [][]byte) error {
	if name == "" || len(blocks) == 0 {
		return fmt.Errorf("remote: install needs a name and at least one block")
	}
	args := &InstallFileArgs{Name: name, BlockSize: blockSize, Blocks: blocks}
	m.mu.Lock()
	if prev, ok := m.installed[name]; ok {
		if prev.BlockSize != blockSize || len(prev.Blocks) != len(blocks) {
			m.mu.Unlock()
			return fmt.Errorf("remote: file %q already installed with %d×%dB blocks, refusing %d×%dB",
				name, len(prev.Blocks), prev.BlockSize, len(blocks), blockSize)
		}
		m.mu.Unlock()
		return nil
	}
	m.installed[name] = args
	m.installOrder = append(m.installOrder, name)
	m.mu.Unlock()

	_, live := m.members.live()
	for _, w := range live {
		var reply InstallFileReply
		if err := m.callWorker(w, "Worker.InstallFile", args, &reply); err != nil {
			if isTransportError(err) {
				continue
			}
			return fmt.Errorf("remote: installing %q on worker %s: %w", name, w.id, err)
		}
	}
	return nil
}

// pushInstalled replays every installed derived file to one worker, in
// installation order — the registration-handshake half of InstallFile.
func (m *Master) pushInstalled(w liveWorker) error {
	m.mu.Lock()
	files := make([]*InstallFileArgs, len(m.installOrder))
	for i, name := range m.installOrder {
		files[i] = m.installed[name]
	}
	m.mu.Unlock()
	for _, args := range files {
		var reply InstallFileReply
		if err := m.callWorker(w, "Worker.InstallFile", args, &reply); err != nil {
			return fmt.Errorf("remote: replaying %q to worker %s: %w", args.Name, w.id, err)
		}
	}
	return nil
}

// jobRef looks up a registered job under the master's lock.
func (m *Master) jobRef(id scheduler.JobID) (JobRef, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref, ok := m.jobs[id]
	return ref, ok
}

// Close stops the control plane and drops all worker connections.
func (m *Master) Close() error {
	m.mu.Lock()
	ln := m.ctl
	m.ctl = nil
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	err := m.members.closeAll()
	m.ctlWG.Wait()
	return err
}

// Results returns completed jobs' outputs, sorted by key.
func (m *Master) Results() map[scheduler.JobID][]mapreduce.KV {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[scheduler.JobID][]mapreduce.KV, len(m.results))
	for id, kvs := range m.results {
		out[id] = kvs
	}
	return out
}

// WorkerStats polls every live worker's counters.
func (m *Master) WorkerStats() ([]StatsReply, error) {
	_, live := m.members.live()
	out := make([]StatsReply, len(live))
	for i, w := range live {
		if err := w.client.Call("Worker.Stats", &StatsArgs{}, &out[i]); err != nil {
			return nil, fmt.Errorf("remote: polling stats of %s: %w", w.id, err)
		}
		out[i].Worker = w.id
	}
	return out, nil
}

// FaultStats implements runtime.FaultStatsSource: the master's
// failover count plus every reachable worker's failed-read counter, so
// a remote run's end-of-run ledger matches what a local run folds from
// its own store.
func (m *Master) FaultStats() metrics.FaultStats {
	m.mu.Lock()
	fs := metrics.FaultStats{Retries: m.failovers}
	m.mu.Unlock()
	_, live := m.members.live()
	for _, w := range live {
		var st StatsReply
		if err := w.client.Call("Worker.Stats", &StatsArgs{}, &st); err != nil {
			continue // best effort: a dead worker keeps its ledger
		}
		fs.FailedAttempts += int(st.FailedReads)
	}
	return fs
}

// CacheStats implements runtime.CacheStatsSource by summing every
// reachable worker's block-cache counters.
func (m *Master) CacheStats() metrics.CacheStats {
	var cs metrics.CacheStats
	_, live := m.members.live()
	for _, w := range live {
		var st StatsReply
		if err := w.client.Call("Worker.Stats", &StatsArgs{}, &st); err != nil {
			continue
		}
		cs.Add(metrics.CacheStats{
			Hits:           st.CacheHits,
			Misses:         st.CacheMisses,
			Evictions:      st.CacheEvictions,
			Prefetches:     st.CachePrefetches,
			PrefetchFailed: st.CachePrefetchFailed,
			Bytes:          st.CacheBytes,
			PinnedBytes:    st.CachePinnedBytes,
		})
	}
	return cs
}

// TakeMemberEvents implements runtime.MembershipSource: it drains the
// membership deltas accumulated since the last call.
func (m *Master) TakeMemberEvents() []comms.MemberEvent { return m.members.takeEvents() }

// LiveWorkers implements runtime.MembershipSource.
func (m *Master) LiveWorkers() int { return m.members.liveCount() }

// ClusterSnapshot implements status.ClusterSource: the full membership
// table, including dead members awaiting rejoin.
func (m *Master) ClusterSnapshot() []comms.WorkerInfo { return m.members.snapshot() }

// allWorkersError marks a task that failed with transport errors on
// every live worker — the signature of a (possibly transient) cluster
// outage rather than a job bug.
type allWorkersError struct {
	what string
	err  error
}

func (e *allWorkersError) Error() string {
	return fmt.Sprintf("remote: %s failed on every worker: %v", e.what, e.err)
}

func (e *allWorkersError) Unwrap() error { return e.err }

// ExecRound implements driver.Executor: map every block of the round
// on its home worker (one merged task per block), then reduce the
// completed jobs' partitions across the workers.
func (m *Master) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	start := m.clock.Now()
	refs := make([]JobRef, len(r.Jobs))
	ids := make([]scheduler.JobID, len(r.Jobs))
	for i, j := range r.Jobs {
		ref, ok := m.jobRef(j.ID)
		if !ok {
			return 0, fmt.Errorf("remote: no JobRef registered for job %d", j.ID)
		}
		refs[i] = ref
		ids[i] = j.ID
		m.ensureJob(j.ID, ref)
	}

	// With a dynamic control plane a workerless moment is recoverable:
	// wait out the rejoin grace, then report the round lost so the
	// engine requeues it (and re-enters this wait).
	if m.hasCtl.Load() {
		if live := m.members.waitLive(1, m.rejoinGrace()); len(live) == 0 {
			return 0, m.roundLost(r, start, &allWorkersError{
				what: fmt.Sprintf("round over segment %d", r.Segment),
				err:  fmt.Errorf("no live workers"),
			})
		}
	}

	// Map phase: one merged task per block, locality-first on the
	// block's home worker, failing over across the live membership
	// when a worker is unreachable. Output accumulates locally and
	// merges only after the whole phase succeeds, so a lost round
	// leaves no partial shuffle state behind.
	acc := make([][][]mapreduce.KV, len(ids))
	for i, ref := range refs {
		width := ref.NumReduce
		if width <= 0 {
			width = 1
		}
		acc[i] = make([][]mapreduce.KV, width)
	}
	var (
		wg        sync.WaitGroup
		errMu     sync.Mutex
		taskErr   error // job-owned failure: propagate, never requeue
		outageErr error // all-workers transport failure: lost round
	)
	seq := m.roundSeq
	m.roundSeq++
	for _, b := range r.Blocks {
		wg.Add(1)
		go func(file string, idx int) {
			defer wg.Done()
			var corr string
			if m.log != nil {
				corr = fmt.Sprintf("r%d.m%d", seq, idx)
			}
			reply, err := m.mapWithFailover(corr, file, idx, refs)
			if err != nil {
				errMu.Lock()
				if awe, ok := err.(*allWorkersError); ok {
					if outageErr == nil {
						outageErr = awe
					}
				} else if taskErr == nil {
					taskErr = err
				}
				errMu.Unlock()
				return
			}
			errMu.Lock()
			for i, parts := range reply.PerJob {
				for p, kvs := range parts {
					acc[i][p] = append(acc[i][p], kvs...)
				}
			}
			errMu.Unlock()
		}(b.File, b.Index)
	}
	wg.Wait()
	if taskErr != nil {
		return 0, taskErr
	}
	if outageErr != nil {
		return 0, m.roundLost(r, start, outageErr)
	}

	// Commit the round's map output. Requeued rounds re-execute their
	// map stage; the per-(job, segment) ledger keeps the deterministic
	// re-run from double-counting records a lost attempt already
	// merged.
	m.mu.Lock()
	for i, id := range ids {
		segs := m.mergedSegs[id]
		if segs == nil {
			segs = make(map[int]bool)
			m.mergedSegs[id] = segs
		}
		if segs[r.Segment] {
			continue
		}
		// Write-ahead: the shuffle record must be durable before the
		// merge is visible — and, transitively, before the engine's
		// round-committed record for this round. A failed append aborts
		// the run rather than silently running undurable.
		if err := m.appendShuffle(id, r.Segment, acc[i]); err != nil {
			m.mu.Unlock()
			return 0, err
		}
		segs[r.Segment] = true
		dst := m.partitions[id]
		for p, kvs := range acc[i] {
			dst[p] = append(dst[p], kvs...)
		}
	}
	m.mu.Unlock()

	// Reduce phase for jobs completing this round.
	for _, id := range r.Completes {
		if err := m.finishJob(id); err != nil {
			if awe, ok := err.(*allWorkersError); ok {
				return 0, m.roundLost(r, start, awe)
			}
			return 0, err
		}
	}
	elapsed := m.clock.Now().Sub(start)
	return vclock.Duration(elapsed.Seconds() * m.timeScale), nil
}

// rejoinGrace returns the configured zero-live-workers wait.
func (m *Master) rejoinGrace() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ctlCfg.RejoinGrace
}

// roundLost converts an all-workers failure into the engine's requeue
// contract when the cluster is dynamic (workers can rejoin), and into
// a hard error when it is static (nothing will ever come back).
func (m *Master) roundLost(r scheduler.Round, start vclock.Time, err error) error {
	if !m.hasCtl.Load() {
		return err
	}
	elapsed := vclock.Duration(m.clock.Now().Sub(start).Seconds() * m.timeScale)
	if elapsed < 0 {
		elapsed = 0
	}
	return &scheduler.RoundLostError{Round: r, Elapsed: elapsed, Err: err}
}

// mapWithFailover tries the block's home worker first, then every
// other live worker. Task-level errors are returned immediately;
// transport errors rotate to the next worker. If every worker in the
// snapshot fails and the membership changed meanwhile (a rejoin landed
// mid-rotation), one fresh snapshot is retried before giving up.
// Retried tasks re-execute from the locally regenerated block, so
// results are unaffected.
func (m *Master) mapWithFailover(corr, file string, idx int, refs []JobRef) (*MapTaskReply, error) {
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		ver, live := m.members.live()
		if len(live) == 0 {
			lastErr = fmt.Errorf("no live workers")
		} else {
			home := idx % len(live)
			for off := 0; off < len(live); off++ {
				w := live[(home+off)%len(live)]
				m.log.Addf(m.clock.Now(), trace.TaskDispatched, -1, -1, "corr=%s map %s#%d worker %s attempt %d", corr, file, idx, w.id, off+1)
				var reply MapTaskReply
				err := m.callWorker(w, "Worker.ExecMap", &MapTaskArgs{File: file, BlockIndex: idx, Jobs: refs, Corr: corr}, &reply)
				if err == nil {
					if off > 0 || pass > 0 {
						m.mu.Lock()
						m.failovers++
						m.mu.Unlock()
					}
					return &reply, nil
				}
				if !isTransportError(err) {
					return nil, err
				}
				lastErr = err
			}
		}
		if ver2, _ := m.members.live(); ver2 == ver {
			break
		}
	}
	return nil, &allWorkersError{what: fmt.Sprintf("block %s#%d", file, idx), err: lastErr}
}

// reduceWithFailover mirrors mapWithFailover for reduce tasks.
func (m *Master) reduceWithFailover(corr string, ref JobRef, p int, records []mapreduce.KV) ([]mapreduce.KV, error) {
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		ver, live := m.members.live()
		if len(live) == 0 {
			lastErr = fmt.Errorf("no live workers")
		} else {
			home := p % len(live)
			for off := 0; off < len(live); off++ {
				w := live[(home+off)%len(live)]
				m.log.Addf(m.clock.Now(), trace.TaskDispatched, -1, -1, "corr=%s reduce %q partition %d worker %s attempt %d", corr, ref.Name, p, w.id, off+1)
				var reply ReduceTaskReply
				err := m.callWorker(w, "Worker.ExecReduce", &ReduceTaskArgs{Job: ref, Partition: p, Records: records, Corr: corr}, &reply)
				if err == nil {
					if off > 0 || pass > 0 {
						m.mu.Lock()
						m.failovers++
						m.mu.Unlock()
					}
					return reply.Output, nil
				}
				if !isTransportError(err) {
					return nil, err
				}
				lastErr = err
			}
		}
		if ver2, _ := m.members.live(); ver2 == ver {
			break
		}
	}
	return nil, &allWorkersError{what: fmt.Sprintf("job %q partition %d", ref.Name, p), err: lastErr}
}

// Failovers reports how many tasks succeeded only after moving off
// their first-choice worker.
func (m *Master) Failovers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// ensureJob lazily allocates a job's shuffle space.
func (m *Master) ensureJob(id scheduler.JobID, ref JobRef) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.partitions[id]; ok {
		return
	}
	width := ref.NumReduce
	if width <= 0 {
		width = 1
	}
	m.partitions[id] = make([][]mapreduce.KV, width)
}

// finishJob fans the job's partitions out to workers for reduction and
// merges the outputs. Shuffle state is only released on success, so a
// lost reduce leaves the job requeueable.
func (m *Master) finishJob(id scheduler.JobID) error {
	ref, _ := m.jobRef(id)
	m.mu.Lock()
	parts, ok := m.partitions[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("remote: round completes unknown job %d", id)
	}

	outputs := make([][]mapreduce.KV, len(parts))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for p, records := range parts {
		wg.Add(1)
		go func(p int, records []mapreduce.KV) {
			defer wg.Done()
			var corr string
			if m.log != nil {
				corr = fmt.Sprintf("j%d.p%d", id, p)
			}
			out, err := m.reduceWithFailover(corr, ref, p, records)
			errMu.Lock()
			defer errMu.Unlock()
			if err != nil {
				if _, outage := err.(*allWorkersError); outage {
					if firstErr == nil {
						firstErr = err
					}
				} else if firstErr == nil || !isTaskLevel(firstErr) {
					// Task-level errors take precedence: they must
					// propagate rather than be masked as a lost round.
					firstErr = err
				}
				return
			}
			outputs[p] = out
		}(p, records)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	merged := mapreduce.MergeSorted(outputs)
	m.mu.Lock()
	if err := m.appendResult(id, merged); err != nil {
		m.mu.Unlock()
		return err
	}
	m.results[id] = merged
	delete(m.partitions, id)
	delete(m.mergedSegs, id)
	m.mu.Unlock()
	return nil
}

// isTaskLevel reports whether err is a job-owned failure rather than
// an infrastructure outage.
func isTaskLevel(err error) bool {
	_, outage := err.(*allWorkersError)
	return !outage
}
