package remote

import (
	"fmt"
	"net/rpc"
	"sync"

	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Master drives scheduler rounds on remote workers. It implements
// driver.Executor, so the same driver loop that runs the in-process
// engine and the simulator also runs the distributed cluster.
//
// Task placement is locality-first: block i is mapped on worker
// i mod W, which owns that block locally; reduce partition p of a job
// runs on worker p mod W.
type Master struct {
	clients []*rpc.Client
	jobs    map[scheduler.JobID]JobRef
	// timeScale converts measured wall seconds to virtual seconds.
	timeScale float64
	clock     *vclock.Wall
	// log, when non-nil, records one TaskDispatched event per issued
	// RPC, tagged with a correlation id the worker echoes into its own
	// trace. roundSeq numbers rounds for those ids.
	log      *trace.Log
	roundSeq int

	mu sync.Mutex
	// partitions[job][p] accumulates job's shuffle records.
	partitions map[scheduler.JobID][][]mapreduce.KV
	results    map[scheduler.JobID][]mapreduce.KV
	failovers  int
}

// Dial connects a master to the given worker addresses and registers
// the jobs it may be asked to run. More jobs may be registered later
// with RegisterJob — the live-admission path.
func Dial(addrs []string, jobs map[scheduler.JobID]JobRef) (*Master, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: master needs at least one worker")
	}
	m := &Master{
		jobs:       make(map[scheduler.JobID]JobRef, len(jobs)),
		timeScale:  1,
		clock:      vclock.NewWall(),
		partitions: make(map[scheduler.JobID][][]mapreduce.KV),
		results:    make(map[scheduler.JobID][]mapreduce.KV),
	}
	for id, ref := range jobs {
		m.jobs[id] = ref
	}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("remote: dialing worker %s: %w", addr, err)
		}
		m.clients = append(m.clients, c)
	}
	return m, nil
}

// SetTimeScale sets the virtual-seconds-per-wall-second factor.
func (m *Master) SetTimeScale(scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("remote: time scale must be positive, got %v", scale))
	}
	m.timeScale = scale
}

// SetTrace installs a trace log recording every dispatched task with
// its correlation id. nil clears it (and stops sending Corr to
// workers). Call before the first round.
func (m *Master) SetTrace(log *trace.Log) { m.log = log }

// RegisterJob makes a live-submitted job runnable: subsequent rounds
// including id ship ref to the workers with each task (workers need no
// pre-registration — every RPC carries its JobRefs, so registering at
// the master is what forwards the submission cluster-wide). Safe to
// call from an admission goroutine while a round is in flight.
// Re-registering an id is an error.
func (m *Master) RegisterJob(id scheduler.JobID, ref JobRef) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.jobs[id]; dup {
		return fmt.Errorf("remote: job %d already registered", id)
	}
	m.jobs[id] = ref
	return nil
}

// jobRef looks up a registered job under the master's lock.
func (m *Master) jobRef(id scheduler.JobID) (JobRef, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref, ok := m.jobs[id]
	return ref, ok
}

// Close drops all worker connections.
func (m *Master) Close() error {
	var first error
	for _, c := range m.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.clients = nil
	return first
}

// Results returns completed jobs' outputs, sorted by key.
func (m *Master) Results() map[scheduler.JobID][]mapreduce.KV {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[scheduler.JobID][]mapreduce.KV, len(m.results))
	for id, kvs := range m.results {
		out[id] = kvs
	}
	return out
}

// WorkerStats polls every worker's counters.
func (m *Master) WorkerStats() ([]StatsReply, error) {
	out := make([]StatsReply, len(m.clients))
	for i, c := range m.clients {
		if err := c.Call("Worker.Stats", &StatsArgs{}, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExecRound implements driver.Executor: map every block of the round
// on its home worker (one merged task per block), then reduce the
// completed jobs' partitions across the workers.
func (m *Master) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	start := m.clock.Now()
	refs := make([]JobRef, len(r.Jobs))
	ids := make([]scheduler.JobID, len(r.Jobs))
	for i, j := range r.Jobs {
		ref, ok := m.jobRef(j.ID)
		if !ok {
			return 0, fmt.Errorf("remote: no JobRef registered for job %d", j.ID)
		}
		refs[i] = ref
		ids[i] = j.ID
		m.ensureJob(j.ID, ref)
	}

	// Map phase: one merged task per block, locality-first on the
	// block's home worker, failing over to the other workers when a
	// worker is unreachable — any worker can serve any block, exactly
	// like re-running a task against another HDFS replica.
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	seq := m.roundSeq
	m.roundSeq++
	for _, b := range r.Blocks {
		wg.Add(1)
		go func(file string, idx int) {
			defer wg.Done()
			var corr string
			if m.log != nil {
				corr = fmt.Sprintf("r%d.m%d", seq, idx)
			}
			reply, err := m.mapWithFailover(corr, file, idx, refs)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			m.mu.Lock()
			for i, parts := range reply.PerJob {
				dst := m.partitions[ids[i]]
				for p, kvs := range parts {
					dst[p] = append(dst[p], kvs...)
				}
			}
			m.mu.Unlock()
		}(b.File, b.Index)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}

	// Reduce phase for jobs completing this round.
	for _, id := range r.Completes {
		if err := m.finishJob(id); err != nil {
			return 0, err
		}
	}
	elapsed := m.clock.Now().Sub(start)
	return vclock.Duration(elapsed.Seconds() * m.timeScale), nil
}

// isTransportError distinguishes a dead connection (retry elsewhere)
// from a task-level failure the job owns (propagate). net/rpc returns
// rpc.ServerError for errors the remote handler produced; everything
// else is transport.
func isTransportError(err error) bool {
	_, serverSide := err.(rpc.ServerError)
	return !serverSide
}

// mapWithFailover tries the block's home worker first, then every
// other worker. Task-level errors are returned immediately; transport
// errors rotate to the next worker. Retried tasks re-execute from the
// locally regenerated block, so results are unaffected.
func (m *Master) mapWithFailover(corr, file string, idx int, refs []JobRef) (*MapTaskReply, error) {
	home := idx % len(m.clients)
	var lastErr error
	for off := 0; off < len(m.clients); off++ {
		worker := (home + off) % len(m.clients)
		client := m.clients[worker]
		m.log.Addf(m.clock.Now(), trace.TaskDispatched, -1, -1, "corr=%s map %s#%d worker %d attempt %d", corr, file, idx, worker, off+1)
		var reply MapTaskReply
		err := client.Call("Worker.ExecMap", &MapTaskArgs{File: file, BlockIndex: idx, Jobs: refs, Corr: corr}, &reply)
		if err == nil {
			if off > 0 {
				m.mu.Lock()
				m.failovers++
				m.mu.Unlock()
			}
			return &reply, nil
		}
		if !isTransportError(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("remote: block %s#%d failed on every worker: %w", file, idx, lastErr)
}

// reduceWithFailover mirrors mapWithFailover for reduce tasks.
func (m *Master) reduceWithFailover(corr string, ref JobRef, p int, records []mapreduce.KV) ([]mapreduce.KV, error) {
	home := p % len(m.clients)
	var lastErr error
	for off := 0; off < len(m.clients); off++ {
		worker := (home + off) % len(m.clients)
		client := m.clients[worker]
		m.log.Addf(m.clock.Now(), trace.TaskDispatched, -1, -1, "corr=%s reduce %q partition %d worker %d attempt %d", corr, ref.Name, p, worker, off+1)
		var reply ReduceTaskReply
		err := client.Call("Worker.ExecReduce", &ReduceTaskArgs{Job: ref, Partition: p, Records: records, Corr: corr}, &reply)
		if err == nil {
			if off > 0 {
				m.mu.Lock()
				m.failovers++
				m.mu.Unlock()
			}
			return reply.Output, nil
		}
		if !isTransportError(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("remote: job %q partition %d failed on every worker: %w", ref.Name, p, lastErr)
}

// Failovers reports how many map tasks succeeded only after moving off
// their home worker.
func (m *Master) Failovers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// ensureJob lazily allocates a job's shuffle space.
func (m *Master) ensureJob(id scheduler.JobID, ref JobRef) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.partitions[id]; ok {
		return
	}
	width := ref.NumReduce
	if width <= 0 {
		width = 1
	}
	m.partitions[id] = make([][]mapreduce.KV, width)
}

// finishJob fans the job's partitions out to workers for reduction and
// merges the outputs.
func (m *Master) finishJob(id scheduler.JobID) error {
	ref, _ := m.jobRef(id)
	m.mu.Lock()
	parts, ok := m.partitions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("remote: round completes unknown job %d", id)
	}
	delete(m.partitions, id)
	m.mu.Unlock()

	outputs := make([][]mapreduce.KV, len(parts))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for p, records := range parts {
		wg.Add(1)
		go func(p int, records []mapreduce.KV) {
			defer wg.Done()
			var corr string
			if m.log != nil {
				corr = fmt.Sprintf("j%d.p%d", id, p)
			}
			out, err := m.reduceWithFailover(corr, ref, p, records)
			errMu.Lock()
			defer errMu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			outputs[p] = out
		}(p, records)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	m.mu.Lock()
	m.results[id] = mapreduce.MergeSorted(outputs)
	m.mu.Unlock()
	return nil
}
