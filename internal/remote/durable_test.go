package remote

import (
	"fmt"
	"net"
	"net/rpc"
	"path/filepath"
	"testing"
	"time"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/journal"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/workload"
)

// wedgedWorker is an RPC server that answers the Worker surface but
// never returns from exec calls until released — a deadlocked worker,
// as seen from the master.
type wedgedWorker struct{ release chan struct{} }

func (w *wedgedWorker) ExecMap(args *MapTaskArgs, reply *MapTaskReply) error {
	<-w.release
	return fmt.Errorf("wedged worker released without work")
}

func (w *wedgedWorker) ExecReduce(args *ReduceTaskArgs, reply *ReduceTaskReply) error {
	<-w.release
	return fmt.Errorf("wedged worker released without work")
}

func (w *wedgedWorker) Stats(args *StatsArgs, reply *StatsReply) error { return nil }

// slowWorker delegates to a real worker after a fixed delay — slow but
// healthy, the case the watchdog must NOT kill.
type slowWorker struct {
	inner *Worker
	delay time.Duration
}

func (s *slowWorker) ExecMap(args *MapTaskArgs, reply *MapTaskReply) error {
	time.Sleep(s.delay)
	return s.inner.ExecMap(args, reply)
}

func (s *slowWorker) ExecReduce(args *ReduceTaskArgs, reply *ReduceTaskReply) error {
	time.Sleep(s.delay)
	return s.inner.ExecReduce(args, reply)
}

func (s *slowWorker) Stats(args *StatsArgs, reply *StatsReply) error { return nil }

// serveStub exposes rcvr under the "Worker" RPC name on a loopback
// listener, returning its address.
func serveStub(t *testing.T, rcvr any) string {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", rcvr); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String()
}

func realWorker(t *testing.T) *Worker {
	t.Helper()
	store := dfs.MustStore(1, 1)
	if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
		t.Fatal(err)
	}
	return NewWorker(store, NewStandardRegistry())
}

// TestTaskDeadlineFailsOver: an exec RPC wedged past the deadline is
// abandoned with a TaskDeadlineError, classified as a transport
// failure, and the task fails over to the next live worker — the round
// completes instead of hanging forever.
func TestTaskDeadlineFailsOver(t *testing.T) {
	wedged := &wedgedWorker{release: make(chan struct{})}
	defer close(wedged.release)
	wedgedAddr := serveStub(t, wedged)

	w := realWorker(t)
	goodAddr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	jobs := wordcountRefs(1)
	// Worker order matters: block 0's home is live[0], the wedged one.
	m, err := Dial([]string{wedgedAddr, goodAddr}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTaskDeadline(100 * time.Millisecond)
	log := trace.MustNew(256)
	m.SetTrace(log)

	reply, err := m.mapWithFailover("", "corpus", 0, []JobRef{jobs[1]})
	if err != nil {
		t.Fatalf("map did not fail over past the wedged worker: %v", err)
	}
	if len(reply.PerJob) != 1 {
		t.Fatalf("reply.PerJob has %d jobs, want 1", len(reply.PerJob))
	}
	if got := m.Failovers(); got < 1 {
		t.Errorf("failovers = %d, want >= 1", got)
	}
	if evs := log.OfKind(trace.TaskDeadlineExceeded); len(evs) == 0 {
		t.Error("no task-deadline-exceeded trace event recorded")
	}
}

// TestTaskDeadlineSparesSlowWorkers: a slow-but-finishing RPC inside
// the deadline completes normally — no failover, no deadline events.
func TestTaskDeadlineSparesSlowWorkers(t *testing.T) {
	w := realWorker(t)
	defer w.Close()
	slowAddr := serveStub(t, &slowWorker{inner: w, delay: 50 * time.Millisecond})

	jobs := wordcountRefs(1)
	m, err := Dial([]string{slowAddr}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTaskDeadline(5 * time.Second)
	log := trace.MustNew(256)
	m.SetTrace(log)

	if _, err := m.mapWithFailover("", "corpus", 0, []JobRef{jobs[1]}); err != nil {
		t.Fatalf("slow worker failed: %v", err)
	}
	if got := m.Failovers(); got != 0 {
		t.Errorf("failovers = %d, want 0", got)
	}
	if evs := log.OfKind(trace.TaskDeadlineExceeded); len(evs) != 0 {
		t.Errorf("%d task-deadline-exceeded events for a healthy worker", len(evs))
	}
}

// driveRounds advances the scheduler/master pair n rounds (-1 = until
// the workload drains), returning the completed job ids.
func driveRounds(t *testing.T, s scheduler.Scheduler, m *Master, n int) []scheduler.JobID {
	t.Helper()
	var done []scheduler.JobID
	for i := 0; n < 0 || i < n; i++ {
		r, ok := s.NextRound(0)
		if !ok {
			if n < 0 {
				return done
			}
			t.Fatalf("scheduler idle at round %d", i)
		}
		if _, err := m.ExecRound(r); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		done = append(done, s.RoundDone(r, 0)...)
	}
	return done
}

// TestMasterJournalShuffleRestore is the crash-consistency core of the
// recovery path, without processes: master A journals two rounds of a
// four-round job and "crashes"; master B restores A's journaled shuffle
// state, resumes from a mid-pass scheduler snapshot, and finishes. Its
// output must be byte-identical to an uninterrupted run.
func TestMasterJournalShuffleRestore(t *testing.T) {
	jobs := wordcountRefs(1)
	meta := scheduler.JobMeta{ID: 1, File: "corpus"}

	// Reference: uninterrupted run.
	refMaster, _ := startCluster(t, 2, jobs)
	refSched := core.New(testPlan(t), nil) // 4 segments
	if err := refSched.Submit(meta, 0); err != nil {
		t.Fatal(err)
	}
	driveRounds(t, refSched, refMaster, -1)
	want, ok := refMaster.JobOutput(1)
	if !ok || len(want) == 0 {
		t.Fatalf("reference run produced no output (ok=%v)", ok)
	}

	// Master A: journal two of the four rounds, then crash.
	path := filepath.Join(t.TempDir(), "journal.wal")
	jnl, _, err := journal.Open(path, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	masterA, _ := startCluster(t, 2, jobs)
	masterA.SetJournal(jnl)
	schedA := core.New(testPlan(t), nil)
	if err := schedA.Submit(meta, 0); err != nil {
		t.Fatal(err)
	}
	driveRounds(t, schedA, masterA, 2)
	snap, err := schedA.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil { // crash: nothing else is flushed
		t.Fatal(err)
	}

	// Master B: replay the journal and resume.
	jnl2, rep, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if rep.Corruption != nil {
		t.Fatalf("clean journal reports corruption: %v", rep.Corruption)
	}
	state, err := journal.ReduceEntries(rep.Entries)
	if err != nil {
		t.Fatal(err)
	}
	segs, ok := state.Shuffle[1]
	if !ok || len(segs) != 2 {
		t.Fatalf("journal holds shuffle for %d segments, want 2", len(segs))
	}

	masterB, _ := startCluster(t, 2, jobs)
	masterB.SetJournal(jnl2)
	schedB := core.New(testPlan(t), nil)
	if err := schedB.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	for seg, parts := range segs {
		if err := masterB.RestoreShuffle(1, seg, parts); err != nil {
			t.Fatal(err)
		}
		// Restoring the same segment twice must be rejected, not
		// silently double-merged.
		if err := masterB.RestoreShuffle(1, seg, parts); err == nil {
			t.Fatal("duplicate shuffle restore accepted")
		}
	}
	done := driveRounds(t, schedB, masterB, -1)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("resumed run completed %v, want [1]", done)
	}
	got, ok := masterB.JobOutput(1)
	if !ok {
		t.Fatal("resumed run has no output for job 1")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Error("resumed output differs from uninterrupted run")
	}

	// The done job's result is itself journaled by master B.
	entries, err := mustReplayFile(t, path)
	if err != nil {
		t.Fatal(err)
	}
	state2, err := journal.ReduceEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(state2.Results[1]) == 0 {
		t.Error("job-result record missing after resumed completion")
	}
}

// mustReplayFile re-opens and replays a journal file.
func mustReplayFile(t *testing.T, path string) ([]journal.Entry, error) {
	t.Helper()
	j, rep, err := journal.Open(path, journal.Options{})
	if err != nil {
		return nil, err
	}
	defer j.Close()
	if rep.Corruption != nil {
		return nil, rep.Corruption
	}
	return rep.Entries, nil
}

// TestRestoreResultServesOutput: a restored terminal job serves its
// output through JobOutput without any execution.
func TestRestoreResultServesOutput(t *testing.T) {
	m := NewMaster(nil)
	out := []mapreduce.KV{{Key: "k", Value: "3"}}
	m.RestoreResult(9, out)
	got, ok := m.JobOutput(9)
	if !ok || fmt.Sprint(got) != fmt.Sprint(out) {
		t.Fatalf("JobOutput = %v ok=%v", got, ok)
	}
	if _, ok := m.JobOutput(10); ok {
		t.Fatal("unknown job has output")
	}
	if err := m.RestoreShuffle(10, 0, nil); err == nil {
		t.Fatal("shuffle restore for unregistered job accepted")
	}
}
