package remote

import (
	"errors"
	"io"
	"net"
	"net/rpc"
)

// isTransportError distinguishes a dead connection (retry the task on
// another worker) from a task-level failure the job owns (propagate to
// the caller). The classification is explicit: only errors that prove
// the *transport* failed — not the task — justify failover, because
// retrying a task whose error was produced by its own map/reduce code
// would re-execute a deterministic failure on every worker, and
// retrying a client-side encode bug would mask it as a dead cluster.
//
// Transport errors are:
//   - net.Error (dial failures, i/o timeouts, refused connections)
//   - io.EOF / io.ErrUnexpectedEOF (connection torn down mid-call —
//     net/rpc surfaces a worker crash this way)
//   - rpc.ErrShutdown (client already closed, e.g. by the membership
//     table declaring the worker dead mid-round)
//
// Everything else — rpc.ServerError (the remote handler returned an
// error), gob encode/decode failures, and any other client-side bug —
// is task-level and is returned to the caller unchanged.
func isTransportError(err error) bool {
	if err == nil {
		return false
	}
	if _, serverSide := err.(rpc.ServerError); serverSide {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, rpc.ErrShutdown) {
		return true
	}
	return false
}
