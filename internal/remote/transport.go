package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"time"
)

// TaskDeadlineError marks a worker RPC abandoned by the master's
// per-task deadline watchdog: the call did not return within the
// configured bound, so the master stopped waiting and moved on. It
// implements net.Error, so isTransportError classifies it as a
// transport failure and the task fails over to the next live worker —
// a wedged worker (deadlocked, GC-stalled, half-partitioned) is
// indistinguishable from a dead one to the caller, and must be treated
// the same or one stuck RPC wedges the whole round forever.
//
// The abandoned call is NOT cancelled on the worker (net/rpc has no
// cancellation); if it eventually finishes, its reply is discarded.
// Map and reduce tasks are deterministic and their commits idempotent
// (per-(job,segment) merge dedup), so a late duplicate execution
// cannot corrupt results.
type TaskDeadlineError struct {
	// Worker is the id of the worker that failed to respond.
	Worker string
	// Method is the stalled RPC method (Worker.ExecMap / ExecReduce).
	Method string
	// Deadline is the bound the call exceeded.
	Deadline time.Duration
}

func (e *TaskDeadlineError) Error() string {
	return fmt.Sprintf("remote: %s on worker %s exceeded the %v task deadline", e.Method, e.Worker, e.Deadline)
}

// Timeout implements net.Error.
func (e *TaskDeadlineError) Timeout() bool { return true }

// Temporary implements net.Error (deprecated in net, but part of the
// interface): deadline expiry says nothing permanent about the worker.
func (e *TaskDeadlineError) Temporary() bool { return true }

// isTransportError distinguishes a dead connection (retry the task on
// another worker) from a task-level failure the job owns (propagate to
// the caller). The classification is explicit: only errors that prove
// the *transport* failed — not the task — justify failover, because
// retrying a task whose error was produced by its own map/reduce code
// would re-execute a deterministic failure on every worker, and
// retrying a client-side encode bug would mask it as a dead cluster.
//
// Transport errors are:
//   - net.Error (dial failures, i/o timeouts, refused connections)
//   - io.EOF / io.ErrUnexpectedEOF (connection torn down mid-call —
//     net/rpc surfaces a worker crash this way)
//   - rpc.ErrShutdown (client already closed, e.g. by the membership
//     table declaring the worker dead mid-round)
//
// Everything else — rpc.ServerError (the remote handler returned an
// error), gob encode/decode failures, and any other client-side bug —
// is task-level and is returned to the caller unchanged.
func isTransportError(err error) bool {
	if err == nil {
		return false
	}
	if _, serverSide := err.(rpc.ServerError); serverSide {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, rpc.ErrShutdown) {
		return true
	}
	return false
}
