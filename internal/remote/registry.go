// Package remote is a distributed execution substrate: a master
// drives map and reduce tasks on worker processes over TCP (net/rpc),
// the way the paper's S^3 plugin drives Hadoop TaskTrackers. The
// schedulers are byte-for-byte the same ones the in-process engine and
// the simulator use — the master simply implements driver.Executor —
// which demonstrates the paper's claim that S^3 integrates
// non-intrusively with the execution layer (§IV-A).
//
// Job code cannot cross the wire, so jobs are named factory
// invocations: every worker holds a Registry mapping factory names to
// mapper/reducer constructors, and the master sends
// (factory, parameter) pairs. Workers generate their blocks locally
// from the deterministic workload generators — the distributed
// analogue of data locality: the bytes never travel, only task
// descriptions and intermediate records do.
package remote

import (
	"fmt"
	"sort"
	"strconv"

	"s3sched/internal/mapreduce"
	"s3sched/internal/workload"
)

// JobFactory builds a job's executable parts from a parameter string.
type JobFactory func(param string) (mapreduce.Mapper, mapreduce.Reducer, mapreduce.Reducer, error)

// Registry resolves factory names. It is populated once at startup and
// read-only afterwards, so it needs no locking.
type Registry struct {
	factories map[string]JobFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]JobFactory)}
}

// Register adds a factory under name. Re-registering a name is a
// configuration bug and panics.
func (r *Registry) Register(name string, f JobFactory) {
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("remote: factory %q registered twice", name))
	}
	r.factories[name] = f
}

// Names returns the registered factory names, sorted. Admission layers
// use it to validate submissions before they reach a worker.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build resolves a factory and constructs the job parts.
func (r *Registry) Build(name, param string) (mapper mapreduce.Mapper, reducer, combiner mapreduce.Reducer, err error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("remote: unknown job factory %q", name)
	}
	return f(param)
}

// NewStandardRegistry returns a registry with the repository's four
// workload families:
//
//	"wordcount"   param = prefix to count
//	"selection"   param = max l_quantity (integer)
//	"aggregation" param unused (Q1-style group-by sum)
//	"topk"        param = k (integer); scans a materialized DAG-stage
//	              output (key\tcount lines) and keeps the k largest
func NewStandardRegistry() *Registry {
	r := NewRegistry()
	r.Register("wordcount", func(param string) (mapreduce.Mapper, mapreduce.Reducer, mapreduce.Reducer, error) {
		return workload.PatternCountMapper{Prefix: param}, workload.SumReducer{}, workload.SumReducer{}, nil
	})
	r.Register("selection", func(param string) (mapreduce.Mapper, mapreduce.Reducer, mapreduce.Reducer, error) {
		max, err := strconv.Atoi(param)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("remote: selection wants an integer quantity, got %q", param)
		}
		return workload.SelectionMapper{MaxQuantity: max}, nil, nil, nil
	})
	r.Register("aggregation", func(string) (mapreduce.Mapper, mapreduce.Reducer, mapreduce.Reducer, error) {
		return workload.AggregationMapper{}, workload.SumReducer{}, workload.SumReducer{}, nil
	})
	r.Register("topk", func(param string) (mapreduce.Mapper, mapreduce.Reducer, mapreduce.Reducer, error) {
		k, err := strconv.Atoi(param)
		if err != nil || k < 1 {
			return nil, nil, nil, fmt.Errorf("remote: topk wants a positive integer k, got %q", param)
		}
		// No combiner: the selection is global, so partial per-block
		// top-k lists cannot be merged by re-running the reducer early.
		return workload.TopKMapper{}, workload.TopKReducer{K: k}, nil, nil
	})
	return r
}
