package remote

import (
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/workload"
)

// corrIDs extracts the correlation ids from a log's events of kind k.
func corrIDs(t *testing.T, log *trace.Log, k trace.Kind) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, ev := range log.OfKind(k) {
		if !strings.HasPrefix(ev.Detail, "corr=") {
			t.Fatalf("%v event without corr prefix: %q", k, ev.Detail)
		}
		id := strings.Fields(strings.TrimPrefix(ev.Detail, "corr="))[0]
		out[id]++
	}
	return out
}

// TestMasterWorkerCorrelation runs a distributed workload with tracing
// on both sides and checks that every task the master dispatched was
// served under the same correlation id — the join key that stitches a
// master's trace to its workers'.
func TestMasterWorkerCorrelation(t *testing.T) {
	jobs := wordcountRefs(2)
	reg := NewStandardRegistry()
	var addrs []string
	workerLogs := make([]*trace.Log, 2)
	var workers []*Worker
	for i := range workerLogs {
		store := dfs.MustStore(1, 1)
		if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
			t.Fatal(err)
		}
		w := NewWorker(store, reg)
		workerLogs[i] = trace.MustNew(256)
		w.SetTrace(workerLogs[i])
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	master, err := Dial(addrs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		master.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	masterLog := trace.MustNew(256)
	master.SetTrace(masterLog)
	master.SetTimeScale(1e6)

	plan := testPlan(t)
	s3 := core.New(plan, nil)
	if _, err := driver.Run(s3, master, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "corpus"}, At: 1},
	}); err != nil {
		t.Fatal(err)
	}

	dispatched := corrIDs(t, masterLog, trace.TaskDispatched)
	served := map[string]int{}
	for _, wl := range workerLogs {
		for id, n := range corrIDs(t, wl, trace.TaskServed) {
			served[id] += n
		}
	}
	if len(dispatched) == 0 {
		t.Fatal("master dispatched no traced tasks")
	}
	// Healthy cluster: every dispatch succeeds on its first worker, so
	// the two id sets match exactly, each id appearing once per side.
	if len(served) != len(dispatched) {
		t.Fatalf("served %d distinct corr ids, dispatched %d", len(served), len(dispatched))
	}
	for id, n := range dispatched {
		if n != 1 {
			t.Errorf("corr %s dispatched %d times, want 1", id, n)
		}
		if served[id] != 1 {
			t.Errorf("corr %s served %d times, want 1", id, served[id])
		}
	}
	// Both phases are represented: map ids r<round>.m<block> and
	// reduce ids j<job>.p<part>.
	var maps, reduces int
	for id := range dispatched {
		switch {
		case strings.HasPrefix(id, "r"):
			maps++
		case strings.HasPrefix(id, "j"):
			reduces++
		default:
			t.Errorf("unrecognized corr id %q", id)
		}
	}
	if maps == 0 || reduces == 0 {
		t.Errorf("corr ids cover maps=%d reduces=%d, want both > 0", maps, reduces)
	}
}
