package remote

import "s3sched/internal/mapreduce"

// Wire types for the master↔worker RPC protocol (net/rpc over gob).

// JobRef names one job's executable parts for a worker's registry.
type JobRef struct {
	// Name identifies the job (for error messages and counters).
	Name string
	// Factory is the registry key; Param its argument.
	Factory string
	Param   string
	// NumReduce is the job's reduce partition count.
	NumReduce int
}

// MapTaskArgs asks a worker to scan one of its local blocks once and
// feed it to every job in Jobs — one merged (shared-scan) map task.
type MapTaskArgs struct {
	File       string
	BlockIndex int
	Jobs       []JobRef
	// Corr is the master-assigned correlation id ("r<round>.m<block>"),
	// echoed into the worker's trace so both sides of the RPC can be
	// stitched together. Empty when the master traces nothing.
	Corr string
}

// MapTaskReply carries the shuffled output: PerJob[i][p] is the slice
// of records job i emitted into reduce partition p.
type MapTaskReply struct {
	PerJob       [][][]mapreduce.KV
	BytesScanned int64
}

// ReduceTaskArgs asks a worker to reduce one partition of one job.
type ReduceTaskArgs struct {
	Job       JobRef
	Partition int
	Records   []mapreduce.KV
	// Corr is the master-assigned correlation id ("j<job>.p<part>").
	Corr string
}

// ReduceTaskReply carries the partition's reduced output.
type ReduceTaskReply struct {
	Output []mapreduce.KV
}

// InstallFileArgs ships a derived file — a finished DAG stage's
// materialized reduce output — to a worker's local store, so later map
// tasks can scan it like any generated corpus file. Unlike the seeded
// corpus, derived bytes cannot be regenerated locally: they are pushed
// once to every live worker at materialization time and replayed to
// late (re)registrants during the registration handshake.
type InstallFileArgs struct {
	Name string
	// BlockSize is the uniform block size; every block in Blocks is
	// exactly this long (StoreResult pads the last one).
	BlockSize int64
	Blocks    [][]byte
}

// InstallFileReply is empty; installation is idempotent — a worker
// already holding Name with the same geometry acks without change.
type InstallFileReply struct{}

// StatsArgs is empty; StatsReply reports a worker's lifetime counters.
type StatsArgs struct{}

// StatsReply is one worker's physical-work ledger — the same
// fault/cache accounting a local run's store reports, so remote and
// local runs fold into identical metrics. The cache fields stay zero
// on workers running without a block cache.
type StatsReply struct {
	// Worker is the reporting worker's identity, filled master-side.
	Worker       string
	BlockReads   int64
	BytesScanned int64
	// FailedReads counts read attempts failed by the fault hook or the
	// block source.
	FailedReads int64
	MapTasks    int64
	ReduceTasks int64
	CacheHits   int64
	CacheMisses int64
	// CacheEvictions counts blocks discarded to fit the cache budget;
	// CachePrefetches/CachePrefetchFailed count readahead loads issued
	// and failed; CacheBytes is the cached footprint at poll time and
	// CachePinnedBytes its pin-protected part.
	CacheEvictions      int64
	CachePrefetches     int64
	CachePrefetchFailed int64
	CacheBytes          int64
	CachePinnedBytes    int64
}
