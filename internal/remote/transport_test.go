package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"os"
	"testing"
	"time"
)

// timeoutErr implements net.Error with Timeout() = true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestIsTransportError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("boom"), false},
		{"task-level rpc.ServerError", rpc.ServerError("remote: job exploded"), false},
		{"io.EOF", io.EOF, true},
		{"io.ErrUnexpectedEOF", io.ErrUnexpectedEOF, true},
		{"rpc.ErrShutdown", rpc.ErrShutdown, true},
		{"net.OpError", &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset")}, true},
		{"net.Error timeout", timeoutErr{}, true},
		{"wrapped EOF", fmt.Errorf("call failed: %w", io.EOF), true},
		{"wrapped shutdown", fmt.Errorf("call failed: %w", rpc.ErrShutdown), true},
		{"wrapped net error", fmt.Errorf("dial: %w", &net.OpError{Op: "dial", Net: "tcp", Err: os.ErrDeadlineExceeded}), true},
		{"wrapped task error", fmt.Errorf("job: %w", errors.New("bad param")), false},
	}
	for _, tc := range cases {
		if got := isTransportError(tc.err); got != tc.want {
			t.Errorf("%s: isTransportError(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestRealRPCErrorsClassify drives the classifier with errors produced
// by a live net/rpc round trip rather than hand-built values: a
// server-side task error must stay non-transport, and a call against a
// closed connection must classify as transport.
func TestRealRPCErrorsClassify(t *testing.T) {
	store := testStore(t)
	w := NewWorker(store, NewStandardRegistry())
	addr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A task-level failure (unknown factory) crosses the wire as
	// rpc.ServerError.
	var mr MapTaskReply
	err = client.Call("Worker.ExecMap", &MapTaskArgs{
		File: "corpus", BlockIndex: 0,
		Jobs: []JobRef{{Factory: "nope", NumReduce: 1}},
	}, &mr)
	if err == nil {
		t.Fatal("unknown factory should fail")
	}
	if isTransportError(err) {
		t.Errorf("server-side task error %v classified as transport", err)
	}

	// Killing the worker makes the same call a transport failure.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		err = client.Call("Worker.ExecMap", &MapTaskArgs{
			File: "corpus", BlockIndex: 0,
			Jobs: []JobRef{{Factory: "wordcount", Param: "t", NumReduce: 1}},
		}, &mr)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls kept succeeding after Close")
		}
	}
	if !isTransportError(err) {
		t.Errorf("call against closed worker returned %v, not classified as transport", err)
	}
}
