package remote

import (
	"reflect"
	"testing"
	"time"

	"s3sched/internal/comms"
	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
	"s3sched/internal/workload"
)

// TestMasterFoldsEveryCacheCounter warms a cursor-policy cache on one
// worker — pins, hits, prefetches and all — and checks the master's
// summed view over the Stats RPC reproduces the store's own counters
// field for field. A counter added to dfs.CacheStats but dropped on the
// wire or in the master's fold shows up here as a mismatch.
func TestMasterFoldsEveryCacheCounter(t *testing.T) {
	store := dfs.MustStore(1, 1)
	f, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.EnableCachePolicy(int64(testBlocks*testBlockSize*2), dfs.PolicyCursor); err != nil {
		t.Fatal(err)
	}

	blocks := f.Blocks()
	// Cold scan of the first half, then a hint that pins it and
	// prefetches the second half, then a warm rescan: every counter —
	// hits, misses, pins, prefetches, footprint — goes nonzero.
	half := blocks[:len(blocks)/2]
	for _, b := range half {
		if _, err := store.ReadBlockAt(b, store.Locations(b)[0]); err != nil {
			t.Fatal(err)
		}
	}
	store.HandleScanHint(dfs.ScanHint{
		File:     f.Name,
		Pin:      [][]dfs.BlockID{half},
		Prefetch: blocks[len(blocks)/2:],
	})
	for _, b := range half {
		if _, err := store.ReadBlockAt(b, store.Locations(b)[0]); err != nil {
			t.Fatal(err)
		}
	}

	w := NewWorker(store, NewStandardRegistry())
	addr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	m, err := Dial([]string{addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Prefetch loads land from goroutines; poll until the master's
	// folded view matches the store and shows the expected activity.
	var got, want metrics.CacheStats
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := store.CacheStats()
		want = metrics.CacheStats{
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			Evictions:      cs.Evictions,
			Prefetches:     cs.Prefetches,
			PrefetchFailed: cs.PrefetchFailed,
			Bytes:          cs.Bytes,
			PinnedBytes:    cs.PinnedBytes,
		}
		got = m.CacheStats()
		settled := got == want && got.Hits > 0 && got.Prefetches > 0 && got.PinnedBytes > 0
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got != want {
		t.Fatalf("master fold diverged from store:\nmaster %+v\nstore  %+v", got, want)
	}
	if got.Hits == 0 || got.Misses == 0 || got.Prefetches == 0 || got.PinnedBytes == 0 || got.Bytes == 0 {
		t.Fatalf("warmup left counters cold: %+v", got)
	}
}

// TestWireStatsMirrorsStatsReply pins the heartbeat ledger to the Stats
// RPC by reflection: every counter in StatsReply must have a same-named,
// same-typed field in comms.WireStats, so a counter added to one wire
// format cannot silently vanish from the other.
func TestWireStatsMirrorsStatsReply(t *testing.T) {
	reply := reflect.TypeOf(StatsReply{})
	wire := reflect.TypeOf(comms.WireStats{})
	for i := 0; i < reply.NumField(); i++ {
		rf := reply.Field(i)
		if rf.Name == "Worker" {
			continue // identity, filled master-side; not a counter
		}
		wf, ok := wire.FieldByName(rf.Name)
		if !ok {
			t.Errorf("StatsReply.%s has no comms.WireStats counterpart", rf.Name)
			continue
		}
		if wf.Type != rf.Type {
			t.Errorf("StatsReply.%s is %v but WireStats.%s is %v", rf.Name, rf.Type, wf.Name, wf.Type)
		}
	}
	// And every cache counter the store reports must cross the RPC at
	// all: one StatsReply field per dfs-level cache stat.
	cache := reflect.TypeOf(metrics.CacheStats{})
	for i := 0; i < cache.NumField(); i++ {
		name := "Cache" + cache.Field(i).Name
		if _, ok := reply.FieldByName(name); !ok {
			t.Errorf("metrics.CacheStats.%s has no StatsReply.%s field", cache.Field(i).Name, name)
		}
	}
}
