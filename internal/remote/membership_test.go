package remote

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"s3sched/internal/comms"
	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Fast control-plane timings for tests: heartbeats every 5ms, suspect
// after 15ms of silence, dead after 40ms, and a generous rejoin grace
// so workerless rounds wait for restarted workers instead of spinning.
var (
	testHeartbeat = 5 * time.Millisecond
	testCtlConfig = ControlConfig{
		SuspectAfter: 15 * time.Millisecond,
		DeadAfter:    40 * time.Millisecond,
		RejoinGrace:  2 * time.Second,
	}
)

// testStore builds a worker-local corpus copy.
func testStore(t *testing.T) *dfs.Store {
	t.Helper()
	store := dfs.MustStore(1, 1)
	if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
		t.Fatal(err)
	}
	return store
}

// startRegisteredWorker serves a worker and registers it with the
// master's control plane under the given identity.
func startRegisteredWorker(t *testing.T, reg *Registry, ctlAddr, id string) *Worker {
	t.Helper()
	w := NewWorker(testStore(t), reg)
	if _, err := w.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(ctlAddr, RegisterOptions{ID: id, Heartbeat: testHeartbeat}); err != nil {
		t.Fatal(err)
	}
	return w
}

// startDynamicCluster boots a control-plane master plus n registered
// workers and waits until all of them are live.
func startDynamicCluster(t *testing.T, n int, jobs map[scheduler.JobID]JobRef, cfg ControlConfig) (*Master, []*Worker, string) {
	t.Helper()
	reg := NewStandardRegistry()
	master := NewMaster(jobs)
	ctlAddr, err := master.ListenControl("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var workers []*Worker
	for i := 0; i < n; i++ {
		workers = append(workers, startRegisteredWorker(t, reg, ctlAddr, fmt.Sprintf("w%d", i)))
	}
	if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		master.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return master, workers, ctlAddr
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// referenceResults runs the same wordcount jobs on the local in-process
// engine — the byte-identical yardstick for every failover scenario.
func referenceResults(t *testing.T, n int) map[scheduler.JobID]string {
	t.Helper()
	store := dfs.MustStore(3, 1)
	if _, err := workload.AddTextFile(store, "corpus", testBlocks, testBlockSize, testSeed); err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	prefixes := workload.DistinctPrefixes(n)
	out := make(map[scheduler.JobID]string, n)
	for i := 0; i < n; i++ {
		ref, err := engine.RunJob(workload.WordCountJob("ref", "corpus", prefixes[i], 2))
		if err != nil {
			t.Fatal(err)
		}
		out[scheduler.JobID(i+1)] = fmt.Sprint(ref.Output)
	}
	return out
}

// TestRegistrationHeartbeatLifecycle pins the control-plane happy path:
// register → joined → heartbeats acknowledged → snapshot carries
// identity and ledgers → death detection after a kill.
func TestRegistrationHeartbeatLifecycle(t *testing.T) {
	master, workers, _ := startDynamicCluster(t, 2, wordcountRefs(1), testCtlConfig)

	if n := master.LiveWorkers(); n != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", n)
	}
	evs := master.TakeMemberEvents()
	regs := 0
	for _, ev := range evs {
		if ev.Kind == comms.MemberRegistered {
			regs++
		}
	}
	if regs != 2 {
		t.Fatalf("registration events = %d (of %v), want 2", regs, evs)
	}

	// Heartbeats flow and are acknowledged.
	waitFor(t, 2*time.Second, "acknowledged heartbeats", func() bool {
		return workers[0].Heartbeats() > 2 && workers[1].Heartbeats() > 2
	})

	// The snapshot carries identity, state, and connection ledgers.
	snap := master.ClusterSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d workers, want 2", len(snap))
	}
	for _, wi := range snap {
		if wi.State != comms.Joined.String() {
			t.Errorf("worker %s state %q, want joined", wi.ID, wi.State)
		}
		if wi.Static {
			t.Errorf("worker %s reported static", wi.ID)
		}
		if wi.TaskAddr == "" {
			t.Errorf("worker %s has no task address", wi.ID)
		}
		if wi.Control.FramesRecv == 0 || wi.Control.FramesSent == 0 {
			t.Errorf("worker %s control ledger empty: %+v", wi.ID, wi.Control)
		}
	}

	// Kill one worker: its broken control connection (or heartbeat
	// silence) walks it to dead, observable as an event and in the
	// live count.
	if err := workers[1].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "death detection", func() bool {
		return master.LiveWorkers() == 1
	})
	lost := false
	for _, ev := range master.TakeMemberEvents() {
		if ev.Kind == comms.MemberLost && ev.Worker == "w1" {
			lost = true
		}
	}
	if !lost {
		t.Error("no MemberLost event for the killed worker")
	}
}

// TestWorkerReconnectsAfterMasterRestart: a worker's control loop must
// survive losing the master and re-register with a replacement
// listening on the same address.
func TestWorkerReconnectsAfterMasterRestart(t *testing.T) {
	reg := NewStandardRegistry()
	master := NewMaster(nil)
	ctlAddr, err := master.ListenControl("127.0.0.1:0", testCtlConfig)
	if err != nil {
		t.Fatal(err)
	}
	w := startRegisteredWorker(t, reg, ctlAddr, "w0")
	defer w.Close()
	if err := master.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}

	// A replacement master reuses the control address; the worker's
	// backoff loop finds it and registers again.
	master2 := NewMaster(nil)
	if _, err := master2.ListenControl(ctlAddr, testCtlConfig); err != nil {
		t.Fatal(err)
	}
	defer master2.Close()
	if err := master2.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatalf("worker did not re-register with restarted master: %v", err)
	}
	// The master admits the worker before the worker processes the ack
	// that bumps its own counter, so poll rather than assert instantly.
	waitFor(t, 2*time.Second, "second registration ack", func() bool {
		return w.Registrations() >= 2
	})
}

// dynamicRun drives jobs through the runtime engine against a dynamic
// master.
func dynamicRun(t *testing.T, master *Master, njobs int, spans *trace.Log, hooks runtime.Hooks) *runtime.Result {
	t.Helper()
	master.SetTimeScale(1e6)
	plan := testPlan(t)
	sched := core.New(plan, nil)
	var arrivals []runtime.Arrival
	for i := 1; i <= njobs; i++ {
		arrivals = append(arrivals, runtime.Arrival{
			Job: scheduler.JobMeta{ID: scheduler.JobID(i), File: "corpus"},
		})
	}
	res, err := runtime.RunTrace(sched, master, arrivals, runtime.Options{Spans: spans, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRollingRestartByteIdentical is the tentpole proof: kill a worker
// after the first round of a multi-round pass, bring up a replacement
// under the same identity mid-run, and require (a) the run completes,
// (b) outputs are byte-identical to the undisturbed local reference,
// (c) the trace shows the loss and the rejoin.
func TestRollingRestartByteIdentical(t *testing.T) {
	jobs := wordcountRefs(2)
	master, workers, ctlAddr := startDynamicCluster(t, 2, jobs, testCtlConfig)
	reg := NewStandardRegistry()
	spans := trace.MustNew(1 << 14)
	master.SetTrace(spans)

	// Hooks run on the engine's goroutine (this test's goroutine), so
	// rolling the worker synchronously inside the hook is race-free and
	// places the restart deterministically between rounds 1 and 2.
	var replacement *Worker
	rounds := 0
	hooks := runtime.Hooks{
		OnRoundDone: func(r scheduler.Round, _ vclock.Time, _ []scheduler.JobID) {
			rounds++
			if rounds != 1 {
				return
			}
			if err := workers[1].Close(); err != nil {
				t.Error(err)
				return
			}
			waitFor(t, 5*time.Second, "loss detection", func() bool {
				return master.LiveWorkers() == 1
			})
			replacement = startRegisteredWorker(t, reg, ctlAddr, "w1")
			waitFor(t, 5*time.Second, "replacement rejoin", func() bool {
				return master.LiveWorkers() == 2
			})
		},
	}
	res := dynamicRun(t, master, 2, spans, hooks)
	if replacement != nil {
		defer replacement.Close()
	}
	if rounds < 2 {
		t.Fatalf("run finished in %d rounds; the restart never happened mid-run", rounds)
	}
	if n := len(res.Metrics.Incomplete()); n != 0 {
		t.Fatalf("%d incomplete jobs", n)
	}

	// Byte-identical outputs despite the restart.
	want := referenceResults(t, 2)
	for id, ref := range want {
		if got := fmt.Sprint(master.Results()[id]); got != ref {
			t.Errorf("job %d: rolling restart changed results", id)
		}
	}

	// The membership churn reached the run's trace through the engine.
	if len(spans.OfKind(trace.WorkerLost)) == 0 {
		t.Error("trace has no worker-lost event")
	}
	if len(spans.OfKind(trace.WorkerRejoined)) == 0 {
		t.Error("trace has no worker-rejoined event")
	}
	if len(spans.OfKind(trace.WorkerRegistered)) < 2 {
		t.Error("trace missing initial worker-registered events")
	}
}

// TestFullOutageRequeuesUntilRejoin: with every worker dead, rounds are
// reported lost and requeued; when a worker comes back the requeued
// round completes and results are still byte-identical.
func TestFullOutageRequeuesUntilRejoin(t *testing.T) {
	// Short rejoin grace so workerless rounds are actually lost and
	// requeued (rather than blocking until the restart lands).
	cfg := testCtlConfig
	cfg.RejoinGrace = 20 * time.Millisecond
	jobs := wordcountRefs(1)
	master, workers, ctlAddr := startDynamicCluster(t, 1, jobs, cfg)
	reg := NewStandardRegistry()

	// The replacement is built on this goroutine (test helpers may call
	// t.Fatal) but served and registered from a timer goroutine, so the
	// engine spends a few requeue cycles with zero live workers first.
	replacement := NewWorker(testStore(t), reg)
	var repErr error
	var repOnce sync.Once
	var repDone = make(chan struct{})
	startReplacement := func() {
		repOnce.Do(func() {
			defer close(repDone)
			if _, err := replacement.Serve("127.0.0.1:0"); err != nil {
				repErr = err
				return
			}
			repErr = replacement.Register(ctlAddr, RegisterOptions{ID: "w0", Heartbeat: testHeartbeat})
		})
	}
	defer replacement.Close()

	rounds := 0
	hooks := runtime.Hooks{
		OnRoundDone: func(r scheduler.Round, _ vclock.Time, _ []scheduler.JobID) {
			rounds++
			if rounds != 1 {
				return
			}
			if err := workers[0].Close(); err != nil {
				t.Error(err)
				return
			}
			waitFor(t, 5*time.Second, "loss detection", func() bool {
				return master.LiveWorkers() == 0
			})
			time.AfterFunc(150*time.Millisecond, startReplacement)
		},
	}
	res := dynamicRun(t, master, 1, nil, hooks)
	<-repDone
	if repErr != nil {
		t.Fatalf("replacement worker: %v", repErr)
	}
	if n := len(res.Metrics.Incomplete()); n != 0 {
		t.Fatalf("%d incomplete jobs", n)
	}
	if fs := res.Metrics.FaultStats(); fs.RequeuedRounds == 0 {
		t.Error("outage produced no requeued rounds")
	}
	want := referenceResults(t, 1)
	if got := fmt.Sprint(master.Results()[1]); got != want[1] {
		t.Error("outage + requeue changed results")
	}
}
