package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Per-job audit reporting: the job-history view a production scheduler
// keeps. Each row decomposes a job's lifetime the way §III-B does —
// submission, waiting, processing, completion.

// JobRow is one job's audit record.
type JobRow struct {
	ID          scheduler.JobID
	SubmittedAt vclock.Time
	StartedAt   vclock.Time
	CompletedAt vclock.Time
	Waiting     vclock.Duration
	Processing  vclock.Duration
	Response    vclock.Duration
}

// JobTable returns one row per job in submission order. It fails if
// any job is incomplete or lacks a recorded start.
func (c *Collector) JobTable() ([]JobRow, error) {
	if len(c.order) == 0 {
		return nil, fmt.Errorf("metrics: no jobs recorded")
	}
	rows := make([]JobRow, 0, len(c.order))
	for _, id := range c.order {
		w, err := c.WaitingTime(id)
		if err != nil {
			return nil, err
		}
		p, err := c.ProcessingTime(id)
		if err != nil {
			return nil, err
		}
		rt, err := c.ResponseTime(id)
		if err != nil {
			return nil, err
		}
		rows = append(rows, JobRow{
			ID:          id,
			SubmittedAt: c.submitted[id],
			StartedAt:   c.started[id],
			CompletedAt: c.completed[id],
			Waiting:     w,
			Processing:  p,
			Response:    rt,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, nil
}

// WriteJobCSV writes the job table as CSV with a header row.
func (c *Collector) WriteJobCSV(w io.Writer) error {
	rows, err := c.JobTable()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "submitted", "started", "completed", "waiting", "processing", "response"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(int(r.ID)),
			f(float64(r.SubmittedAt)), f(float64(r.StartedAt)), f(float64(r.CompletedAt)),
			f(r.Waiting.Seconds()), f(r.Processing.Seconds()), f(r.Response.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
