package metrics

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds live counters, gauges and fixed-bucket histograms and
// exposes them in Prometheus text format. Unlike Collector (an
// end-of-run ledger with strict lifecycle panics), Registry instruments
// a running system: all operations are concurrency-safe and cheap
// enough to leave on. Export is deterministic — metrics sort by name,
// floats format minimally — so two identical seeded runs produce
// byte-identical snapshots.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]any // *Counter | *Gauge | *Histogram
	helpFor map[string]string
}

// metricName enforces the Prometheus naming charset.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any), helpFor: make(map[string]string)}
}

func (r *Registry) register(name, help string, build func() any) any {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := build()
	r.byName[name] = m
	r.helpFor[name] = help
	return m
}

// Counter returns the named monotonically-increasing counter,
// registering it on first use. Registering a name twice with different
// metric types panics — that is a programming error, consistent with
// Collector's misuse panics.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T, not a counter", name, m))
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T, not a gauge", name, m))
	}
	return g
}

// Histogram returns the named histogram with the given upper bucket
// bounds (an implicit +Inf bucket is always appended), registering it
// on first use. Bounds must be strictly increasing. Re-registering
// with different bounds returns the original histogram — bounds are
// fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %q bucket bounds not increasing: %v", name, bounds))
		}
	}
	m := r.register(name, help, func() any {
		return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T, not a histogram", name, m))
	}
	return h
}

// Counter is a monotonically-increasing float64.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. Negative deltas panic: counters only go up.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: counter decrement by %v", delta))
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous float64 that can move both ways.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add moves the value by delta (negative allowed).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into fixed cumulative-style buckets:
// counts[i] observations fell at or below bounds[i]; the final slot is
// the +Inf overflow. Fixed buckets keep Observe O(log n) and lock-short,
// and make snapshots of identical runs byte-identical.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1, per-bucket (non-cumulative)
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket; last is +Inf overflow
	Sum    float64
	Count  uint64
}

// Snapshot returns a consistent copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank, the way
// Prometheus histogram_quantile does. Values in the +Inf bucket clamp
// to the largest finite bound. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LinearBuckets returns count upper bounds starting at start, spaced
// by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns count upper bounds starting at start,
// each factor times the last. Start and factor must make the sequence
// strictly increasing.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// fmtFloat renders a float the way Prometheus clients do: minimal
// round-trip representation, stable across runs.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	metricsCopy := make(map[string]any, len(r.byName))
	helpCopy := make(map[string]string, len(r.helpFor))
	for name, m := range r.byName {
		metricsCopy[name] = m
		helpCopy[name] = r.helpFor[name]
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		if help := helpCopy[name]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		switch m := metricsCopy[name].(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			fmt.Fprintf(&b, "%s %s\n", name, fmtFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
			fmt.Fprintf(&b, "%s %s\n", name, fmtFloat(m.Value()))
		case *Histogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			s := m.Snapshot()
			var cum uint64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum)
			}
			cum += s.Counts[len(s.Counts)-1]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", name, fmtFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", name, cum)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
