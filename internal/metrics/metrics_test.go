package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func TestPaperExample1FIFO(t *testing.T) {
	// §III Example 1, FIFO: J1 at 0 completes at 100, J2 at 20
	// completes at 200 -> TET 200, ART 140.
	c := NewCollector()
	c.Submit(1, 0)
	c.Submit(2, 20)
	c.Complete(1, 100)
	c.Complete(2, 200)
	tet, err := c.TET()
	if err != nil {
		t.Fatal(err)
	}
	if tet != 200 {
		t.Errorf("TET = %v, want 200", tet)
	}
	art, err := c.ART()
	if err != nil {
		t.Fatal(err)
	}
	if art != 140 {
		t.Errorf("ART = %v, want 140", art)
	}
}

func TestResponseTime(t *testing.T) {
	c := NewCollector()
	c.Submit(7, 10)
	c.Complete(7, 35)
	rt, err := c.ResponseTime(7)
	if err != nil {
		t.Fatal(err)
	}
	if rt != 25 {
		t.Errorf("rt = %v, want 25", rt)
	}
	if _, err := c.ResponseTime(9); err == nil {
		t.Error("unknown job should error")
	}
}

func TestIncompleteDetection(t *testing.T) {
	c := NewCollector()
	c.Submit(1, 0)
	c.Submit(2, 1)
	c.Complete(2, 5)
	inc := c.Incomplete()
	if len(inc) != 1 || inc[0] != 1 {
		t.Fatalf("Incomplete = %v", inc)
	}
	if _, err := c.TET(); err == nil {
		t.Error("TET with incomplete job should error")
	}
	if _, err := c.ART(); err == nil {
		t.Error("ART with incomplete job should error")
	}
	if _, err := c.Summarize("x"); err == nil {
		t.Error("Summarize with incomplete job should error")
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if _, err := c.TET(); err == nil {
		t.Error("empty TET should error")
	}
	if _, err := c.ART(); err == nil {
		t.Error("empty ART should error")
	}
	if c.Jobs() != 0 {
		t.Error("Jobs != 0")
	}
}

func TestCollectorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(c *Collector)
	}{
		{"double submit", func(c *Collector) { c.Submit(1, 0); c.Submit(1, 0) }},
		{"complete unknown", func(c *Collector) { c.Complete(1, 0) }},
		{"double complete", func(c *Collector) { c.Submit(1, 0); c.Complete(1, 1); c.Complete(1, 2) }},
		{"complete before submit time", func(c *Collector) { c.Submit(1, 10); c.Complete(1, 5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn(NewCollector())
		})
	}
}

func TestSummarizeAndNormalize(t *testing.T) {
	mk := func(scheme string, tet, art vclock.Duration) Summary {
		return Summary{Scheme: scheme, TET: tet, ART: art}
	}
	rep, err := Normalize("s3", []Summary{
		mk("s3", 100, 50),
		mk("fifo", 220, 125),
		mk("mrshare", 120, 110),
	})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := rep.Row("fifo")
	if !ok {
		t.Fatal("fifo row missing")
	}
	if row.NormTET != 2.2 || row.NormART != 2.5 {
		t.Errorf("fifo normalized = %v/%v, want 2.2/2.5", row.NormTET, row.NormART)
	}
	base, _ := rep.Row("s3")
	if base.NormTET != 1 || base.NormART != 1 {
		t.Errorf("baseline normalized = %v/%v, want 1/1", base.NormTET, base.NormART)
	}
	s := rep.String()
	for _, want := range []string{"s3", "fifo", "mrshare", "TET/base"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// Baseline renders first.
	if !strings.HasPrefix(strings.Split(s, "\n")[1], "s3") {
		t.Errorf("baseline not first:\n%s", s)
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := Normalize("s3", []Summary{{Scheme: "fifo", TET: 1, ART: 1}}); err == nil {
		t.Error("missing baseline should error")
	}
	if _, err := Normalize("s3", []Summary{{Scheme: "s3", TET: 0, ART: 1}}); err == nil {
		t.Error("zero baseline TET should error")
	}
	if _, ok := (Report{}).Row("x"); ok {
		t.Error("Row on empty report should be false")
	}
}

// Property: ART never exceeds TET when all jobs are submitted at or
// after the first submission and complete by the last completion.
func TestARTAtMostTETProperty(t *testing.T) {
	prop := func(subs8, durs8 [6]uint8) bool {
		c := NewCollector()
		for i := 0; i < 6; i++ {
			sub := vclock.Time(subs8[i] % 100)
			c.Submit(scheduler.JobID(i), sub)
			c.Complete(scheduler.JobID(i), sub.Add(vclock.Duration(durs8[i]%50)+1))
		}
		tet, err1 := c.TET()
		art, err2 := c.ART()
		if err1 != nil || err2 != nil {
			return false
		}
		// Each response interval lies within [first submit, last
		// complete], so its length — and hence the mean — is ≤ TET.
		return art <= tet+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	c.Submit(1, 0)
	c.Complete(1, 10)
	s, err := c.Summarize("s3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme != "s3" || s.TET != 10 || s.ART != 10 {
		t.Errorf("summary = %+v", s)
	}
}

func TestWaitingProcessingDecomposition(t *testing.T) {
	c := NewCollector()
	c.Submit(1, 0)
	c.Start(1, 30)
	c.Start(1, 50) // later rounds must not move the start
	c.Complete(1, 130)
	w, err := c.WaitingTime(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.ProcessingTime(1)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := c.ResponseTime(1)
	if w != 30 || p != 100 {
		t.Fatalf("wait/processing = %v/%v, want 30/100", w, p)
	}
	if w+p != rt {
		t.Fatalf("decomposition %v+%v != response %v", w, p, rt)
	}
	avg, err := c.AverageWaiting()
	if err != nil {
		t.Fatal(err)
	}
	if avg != 30 {
		t.Fatalf("AverageWaiting = %v, want 30", avg)
	}
}

func TestDecompositionErrors(t *testing.T) {
	c := NewCollector()
	c.Submit(1, 5)
	if _, err := c.WaitingTime(1); err == nil {
		t.Error("no start recorded should error")
	}
	if _, err := c.ProcessingTime(1); err == nil {
		t.Error("no start recorded should error")
	}
	if _, err := c.WaitingTime(9); err == nil {
		t.Error("unknown job should error")
	}
	if _, err := NewCollector().AverageWaiting(); err == nil {
		t.Error("empty collector should error")
	}
	for _, fn := range []func(){
		func() { c.Start(9, 0) }, // never submitted
		func() { c.Start(1, 2) }, // before submission
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPercentilesAndMax(t *testing.T) {
	c := NewCollector()
	for i, rt := range []vclock.Duration{10, 20, 30, 40, 50} {
		id := scheduler.JobID(i + 1)
		c.Submit(id, 0)
		c.Complete(id, vclock.Time(rt))
	}
	p50, err := c.PercentileResponse(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 30 {
		t.Errorf("p50 = %v, want 30", p50)
	}
	p90, _ := c.PercentileResponse(90)
	if p90 != 50 {
		t.Errorf("p90 = %v, want 50", p90)
	}
	mx, _ := c.MaxResponse()
	if mx != 50 {
		t.Errorf("max = %v, want 50", mx)
	}
	if _, err := c.PercentileResponse(0); err == nil {
		t.Error("percentile 0 should fail")
	}
	if _, err := c.PercentileResponse(101); err == nil {
		t.Error("percentile 101 should fail")
	}
	rts, err := c.ResponseTimes()
	if err != nil || len(rts) != 5 || rts[0] != 10 {
		t.Errorf("ResponseTimes = %v, %v", rts, err)
	}
	if _, err := NewCollector().ResponseTimes(); err == nil {
		t.Error("empty collector should fail")
	}
}

func TestJobTableAndCSV(t *testing.T) {
	c := NewCollector()
	c.Submit(2, 10)
	c.Submit(1, 0)
	c.Start(1, 5)
	c.Start(2, 12)
	c.Complete(1, 50)
	c.Complete(2, 60)
	rows, err := c.JobTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ID != 1 || rows[1].ID != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Waiting != 5 || rows[0].Processing != 45 || rows[0].Response != 50 {
		t.Errorf("row 1 = %+v", rows[0])
	}
	var buf strings.Builder
	if err := c.WriteJobCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "job,submitted") {
		t.Fatalf("csv = %q", out)
	}
	if !strings.HasPrefix(lines[1], "1,0.000,5.000,50.000,5.000,45.000,50.000") {
		t.Errorf("row 1 csv = %q", lines[1])
	}
	// Incomplete collector fails.
	bad := NewCollector()
	bad.Submit(1, 0)
	if _, err := bad.JobTable(); err == nil {
		t.Error("incomplete job table should fail")
	}
	if err := bad.WriteJobCSV(&buf); err == nil {
		t.Error("incomplete CSV should fail")
	}
}

// Property: for any valid submit <= start <= complete ordering,
// waiting + processing == response exactly, and the job table agrees
// with the individual accessors.
func TestDecompositionIdentityProperty(t *testing.T) {
	prop := func(subs, waits, procs [5]uint8) bool {
		c := NewCollector()
		for i := 0; i < 5; i++ {
			id := scheduler.JobID(i + 1)
			sub := vclock.Time(subs[i] % 100)
			start := sub.Add(vclock.Duration(waits[i] % 50))
			done := start.Add(vclock.Duration(procs[i]%50) + 1)
			c.Submit(id, sub)
			c.Start(id, start)
			c.Complete(id, done)
		}
		rows, err := c.JobTable()
		if err != nil || len(rows) != 5 {
			return false
		}
		for _, r := range rows {
			if r.Waiting+r.Processing != r.Response {
				return false
			}
			w, err1 := c.WaitingTime(r.ID)
			p, err2 := c.ProcessingTime(r.ID)
			if err1 != nil || err2 != nil || w != r.Waiting || p != r.Processing {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCacheStatsAccounting(t *testing.T) {
	var cs CacheStats
	if cs.HitRatio() != 0 {
		t.Errorf("empty hit ratio = %v, want 0", cs.HitRatio())
	}
	cs.Add(CacheStats{Hits: 3, Misses: 1, Evictions: 2, Bytes: 100})
	cs.Add(CacheStats{Hits: 1, Misses: 3, Bytes: 28})
	if cs.Hits != 4 || cs.Misses != 4 || cs.Evictions != 2 || cs.Bytes != 128 {
		t.Errorf("after Add, cs = %+v", cs)
	}
	if cs.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", cs.HitRatio())
	}

	c := NewCollector()
	if got := c.CacheStats(); got != (CacheStats{}) {
		t.Errorf("fresh collector cache stats = %+v", got)
	}
	c.AddCacheStats(CacheStats{Hits: 5, Misses: 5})
	c.AddCacheStats(CacheStats{Hits: 1, Evictions: 4})
	if got := c.CacheStats(); got.Hits != 6 || got.Misses != 5 || got.Evictions != 4 {
		t.Errorf("collector cache stats = %+v", got)
	}
}

func TestFaultStatsFold(t *testing.T) {
	var fs FaultStats
	fs.Add(FaultStats{Retries: 2, FailedAttempts: 3, BlacklistedNodes: 1, RequeuedRounds: 4, RequeuedSubJobs: 5, FailedJobs: 1})
	fs.Add(FaultStats{Retries: 1, FailedAttempts: 1})
	want := FaultStats{Retries: 3, FailedAttempts: 4, BlacklistedNodes: 1, RequeuedRounds: 4, RequeuedSubJobs: 5, FailedJobs: 1}
	if fs != want {
		t.Errorf("after Add, fs = %+v, want %+v", fs, want)
	}
	c := NewCollector()
	c.AddFaultStats(FaultStats{Retries: 1, RequeuedRounds: 2})
	c.AddFaultStats(FaultStats{FailedJobs: 1})
	got := c.FaultStats()
	if got.Retries != 1 || got.RequeuedRounds != 2 || got.FailedJobs != 1 {
		t.Errorf("collector fault stats = %+v", got)
	}
}
