// Package metrics computes the paper's two performance metrics
// (§III-B): total execution time (TET — first submission to last
// completion) and average response time (ART — mean per-job
// submission-to-completion interval), plus the normalized report rows
// Figure 4 presents.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Collector accumulates per-job submission, first-scheduling and
// completion times. The optional start times let ART be decomposed the
// way §III-B describes: response = waiting (submission → first round
// that includes the job) + processing (first round → completion).
type Collector struct {
	submitted map[scheduler.JobID]vclock.Time
	started   map[scheduler.JobID]vclock.Time
	completed map[scheduler.JobID]vclock.Time
	failed    map[scheduler.JobID]vclock.Time
	order     []scheduler.JobID // submission order
	stages    []RoundStages     // per-round stage timeline (pipelined runs)
	faults    FaultStats
	cache     CacheStats
}

// FaultStats aggregates a run's fault-handling counters. All zeros on
// a fault-free run.
type FaultStats struct {
	// Retries counts block attempts re-executed after a failure.
	Retries int
	// FailedAttempts counts block-read attempts that failed.
	FailedAttempts int
	// BlacklistedNodes counts nodes marked down after consecutive
	// failures.
	BlacklistedNodes int
	// RequeuedRounds counts lost rounds returned to the scheduler.
	RequeuedRounds int
	// RequeuedSubJobs counts sub-jobs riding those requeued rounds.
	RequeuedSubJobs int
	// FailedJobs counts jobs that terminated with an error.
	FailedJobs int
}

// Add accumulates other into s.
func (s *FaultStats) Add(other FaultStats) {
	s.Retries += other.Retries
	s.FailedAttempts += other.FailedAttempts
	s.BlacklistedNodes += other.BlacklistedNodes
	s.RequeuedRounds += other.RequeuedRounds
	s.RequeuedSubJobs += other.RequeuedSubJobs
	s.FailedJobs += other.FailedJobs
}

// AddFaultStats accumulates fault counters into the collector.
func (c *Collector) AddFaultStats(fs FaultStats) { c.faults.Add(fs) }

// FaultStats returns the run's accumulated fault counters.
func (c *Collector) FaultStats() FaultStats { return c.faults }

// CacheStats aggregates a run's block-cache counters. All zeros when
// caching is off.
type CacheStats struct {
	// Hits counts block reads served from cache instead of disk.
	Hits int64
	// Misses counts block reads that went to disk.
	Misses int64
	// Evictions counts blocks discarded to fit the cache byte budget.
	Evictions int64
	// Prefetches counts speculative readahead loads issued.
	Prefetches int64
	// PrefetchFailed counts prefetch loads that failed (block dropped).
	PrefetchFailed int64
	// Bytes is the cached byte footprint at the end of the run.
	Bytes int64
	// PinnedBytes is the pin-protected footprint at the end of the run.
	PinnedBytes int64
}

// HitRatio returns hits / (hits + misses), or 0 when no reads occurred.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add accumulates other into s. Bytes and PinnedBytes are
// point-in-time footprints, so footprints sum across disjoint caches
// (one per worker).
func (s *CacheStats) Add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Prefetches += other.Prefetches
	s.PrefetchFailed += other.PrefetchFailed
	s.Bytes += other.Bytes
	s.PinnedBytes += other.PinnedBytes
}

// AddCacheStats accumulates block-cache counters into the collector.
func (c *Collector) AddCacheStats(cs CacheStats) { c.cache.Add(cs) }

// CacheStats returns the run's accumulated block-cache counters.
func (c *Collector) CacheStats() CacheStats { return c.cache }

// RoundStages is one round's stage timeline under pipelined execution:
// the scan/map stage occupies the cluster's map slots during
// [MapStart, MapEnd]; the reduce stage runs during [ReduceStart,
// ReduceEnd], concurrently with later rounds' map stages; Retired is
// when the round's completions were reported (round-ordered, so it can
// trail ReduceEnd when an earlier round's reduce finished later).
type RoundStages struct {
	Seq         int // launch order, 0-based
	Segment     int // segment scanned, or -1 when not segment-aligned
	MapStart    vclock.Time
	MapEnd      vclock.Time
	ReduceStart vclock.Time
	ReduceEnd   vclock.Time
	Retired     vclock.Time
}

// AddRoundStages records one pipelined round's stage timeline.
func (c *Collector) AddRoundStages(rs RoundStages) {
	c.stages = append(c.stages, rs)
}

// RoundStages returns the recorded stage timelines in launch order.
// Serial runs record none.
func (c *Collector) RoundStages() []RoundStages {
	out := make([]RoundStages, len(c.stages))
	copy(out, c.stages)
	return out
}

// PipelineOverlap totals the reduce-stage time that ran concurrently
// with a later round's map stage — the work the serial runtime would
// have serialized. It is the sum over rounds of the overlap between
// [ReduceStart, ReduceEnd] and any later round's [MapStart, MapEnd].
func (c *Collector) PipelineOverlap() vclock.Duration {
	var total vclock.Duration
	for i, rs := range c.stages {
		for _, later := range c.stages[i+1:] {
			lo := rs.ReduceStart
			if later.MapStart > lo {
				lo = later.MapStart
			}
			hi := rs.ReduceEnd
			if later.MapEnd < hi {
				hi = later.MapEnd
			}
			if hi > lo {
				total += hi.Sub(lo)
			}
		}
	}
	return total
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		submitted: make(map[scheduler.JobID]vclock.Time),
		started:   make(map[scheduler.JobID]vclock.Time),
		completed: make(map[scheduler.JobID]vclock.Time),
		failed:    make(map[scheduler.JobID]vclock.Time),
	}
}

// Submit records job id arriving at time t. Resubmission panics: it
// would silently corrupt ART.
func (c *Collector) Submit(id scheduler.JobID, t vclock.Time) {
	if _, dup := c.submitted[id]; dup {
		panic(fmt.Sprintf("metrics: job %d submitted twice", id))
	}
	c.submitted[id] = t
	c.order = append(c.order, id)
}

// Start records the first time job id was included in a launched
// round. Only the first call per job takes effect, so callers may
// report every round's batch without bookkeeping. It reports whether
// this call was the first — the moment the job's waiting interval
// became known — so telemetry can observe it exactly once.
func (c *Collector) Start(id scheduler.JobID, t vclock.Time) bool {
	sub, ok := c.submitted[id]
	if !ok {
		panic(fmt.Sprintf("metrics: job %d started but never submitted", id))
	}
	if t < sub {
		panic(fmt.Sprintf("metrics: job %d started at %v before submission at %v", id, t, sub))
	}
	if _, dup := c.started[id]; dup {
		return false
	}
	c.started[id] = t
	return true
}

// Complete records job id finishing at time t. Completing an
// unsubmitted, already-completed, or failed job panics.
func (c *Collector) Complete(id scheduler.JobID, t vclock.Time) {
	sub, ok := c.submitted[id]
	if !ok {
		panic(fmt.Sprintf("metrics: job %d completed but never submitted", id))
	}
	if _, dup := c.completed[id]; dup {
		panic(fmt.Sprintf("metrics: job %d completed twice", id))
	}
	if _, f := c.failed[id]; f {
		panic(fmt.Sprintf("metrics: job %d completed after failing", id))
	}
	if t < sub {
		panic(fmt.Sprintf("metrics: job %d completed at %v before submission at %v", id, t, sub))
	}
	c.completed[id] = t
}

// Fail records job id terminating with an error at time t. Failed jobs
// are excluded from TET/ART (which measure the surviving workload) but
// counted in FaultStats. Failing an unsubmitted or completed job
// panics; repeated Fail calls for one job are idempotent.
func (c *Collector) Fail(id scheduler.JobID, t vclock.Time) {
	if _, ok := c.submitted[id]; !ok {
		panic(fmt.Sprintf("metrics: job %d failed but never submitted", id))
	}
	if _, done := c.completed[id]; done {
		panic(fmt.Sprintf("metrics: job %d failed after completing", id))
	}
	if _, dup := c.failed[id]; dup {
		return
	}
	c.failed[id] = t
	c.faults.FailedJobs++
}

// Failed returns the jobs that terminated with an error, in submission
// order.
func (c *Collector) Failed() []scheduler.JobID {
	var out []scheduler.JobID
	for _, id := range c.order {
		if _, f := c.failed[id]; f {
			out = append(out, id)
		}
	}
	return out
}

// Jobs returns how many jobs were submitted.
func (c *Collector) Jobs() int { return len(c.submitted) }

// Incomplete returns the submitted jobs that neither completed nor
// failed, in submission order. Failed jobs are terminal, not pending,
// so they do not appear here.
func (c *Collector) Incomplete() []scheduler.JobID {
	var out []scheduler.JobID
	for _, id := range c.order {
		if _, done := c.completed[id]; done {
			continue
		}
		if _, f := c.failed[id]; f {
			continue
		}
		out = append(out, id)
	}
	return out
}

// survivors returns the submitted jobs that did not fail, in
// submission order — the population TET/ART are computed over.
func (c *Collector) survivors() []scheduler.JobID {
	out := make([]scheduler.JobID, 0, len(c.order))
	for _, id := range c.order {
		if _, f := c.failed[id]; !f {
			out = append(out, id)
		}
	}
	return out
}

// ResponseTime returns a job's submission-to-completion interval.
func (c *Collector) ResponseTime(id scheduler.JobID) (vclock.Duration, error) {
	sub, ok := c.submitted[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d was never submitted", id)
	}
	done, ok := c.completed[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d has not completed", id)
	}
	return done.Sub(sub), nil
}

// WaitingTime returns the interval from a job's submission to the
// launch of the first round that included it (§III-B's waiting
// component). It fails when no start was recorded.
func (c *Collector) WaitingTime(id scheduler.JobID) (vclock.Duration, error) {
	sub, ok := c.submitted[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d was never submitted", id)
	}
	start, ok := c.started[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d has no recorded start", id)
	}
	return start.Sub(sub), nil
}

// ProcessingTime returns the interval from a job's first scheduled
// round to its completion (§III-B's processing component).
func (c *Collector) ProcessingTime(id scheduler.JobID) (vclock.Duration, error) {
	start, ok := c.started[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d has no recorded start", id)
	}
	done, ok := c.completed[id]
	if !ok {
		return 0, fmt.Errorf("metrics: job %d has not completed", id)
	}
	return done.Sub(start), nil
}

// AverageWaiting returns the mean waiting time across surviving jobs
// with recorded starts. It fails if any surviving job lacks a start or
// completion.
func (c *Collector) AverageWaiting() (vclock.Duration, error) {
	jobs := c.survivors()
	if len(jobs) == 0 {
		return 0, fmt.Errorf("metrics: no surviving jobs recorded")
	}
	var total vclock.Duration
	for _, id := range jobs {
		w, err := c.WaitingTime(id)
		if err != nil {
			return 0, err
		}
		total += w
	}
	return total / vclock.Duration(len(jobs)), nil
}

// TET returns the total execution time: the interval between the first
// job's submission and the last surviving job's completion. It fails
// if any surviving job is incomplete or every job failed.
func (c *Collector) TET() (vclock.Duration, error) {
	if len(c.submitted) == 0 {
		return 0, fmt.Errorf("metrics: no jobs recorded")
	}
	if inc := c.Incomplete(); len(inc) > 0 {
		return 0, fmt.Errorf("metrics: %d job(s) incomplete: %v", len(inc), inc)
	}
	if len(c.completed) == 0 {
		return 0, fmt.Errorf("metrics: every job failed; TET undefined")
	}
	var first vclock.Time
	var last vclock.Time
	firstSet := false
	for _, t := range c.submitted {
		if !firstSet || t < first {
			first = t
			firstSet = true
		}
	}
	for _, t := range c.completed {
		if t > last {
			last = t
		}
	}
	return last.Sub(first), nil
}

// ART returns the average response time across surviving jobs. It
// fails if any surviving job is incomplete or every job failed.
func (c *Collector) ART() (vclock.Duration, error) {
	if len(c.submitted) == 0 {
		return 0, fmt.Errorf("metrics: no jobs recorded")
	}
	if inc := c.Incomplete(); len(inc) > 0 {
		return 0, fmt.Errorf("metrics: %d job(s) incomplete: %v", len(inc), inc)
	}
	jobs := c.survivors()
	if len(jobs) == 0 {
		return 0, fmt.Errorf("metrics: every job failed; ART undefined")
	}
	var total vclock.Duration
	for _, id := range jobs {
		rt, err := c.ResponseTime(id)
		if err != nil {
			return 0, err
		}
		total += rt
	}
	return total / vclock.Duration(len(jobs)), nil
}

// ResponseTimes returns every surviving job's response time in
// submission order. It fails if any surviving job is incomplete.
func (c *Collector) ResponseTimes() ([]vclock.Duration, error) {
	jobs := c.survivors()
	if len(jobs) == 0 {
		return nil, fmt.Errorf("metrics: no surviving jobs recorded")
	}
	out := make([]vclock.Duration, 0, len(jobs))
	for _, id := range jobs {
		rt, err := c.ResponseTime(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rt)
	}
	return out, nil
}

// PercentileResponse returns the p-th percentile response time
// (0 < p <= 100) using the nearest-rank method.
func (c *Collector) PercentileResponse(p float64) (vclock.Duration, error) {
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v outside (0,100]", p)
	}
	rts, err := c.ResponseTimes()
	if err != nil {
		return 0, err
	}
	sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
	rank := int(math.Ceil(p / 100 * float64(len(rts))))
	if rank < 1 {
		rank = 1
	}
	return rts[rank-1], nil
}

// MaxResponse returns the worst per-job response time.
func (c *Collector) MaxResponse() (vclock.Duration, error) {
	return c.PercentileResponse(100)
}

// Summary is the measured outcome of one scheduler run. P50/P95/P99
// are per-job response-time percentiles (nearest-rank), the tail view
// a mean like ART hides.
type Summary struct {
	Scheme string
	TET    vclock.Duration
	ART    vclock.Duration
	P50    vclock.Duration
	P95    vclock.Duration
	P99    vclock.Duration
}

// Summarize computes a Summary for a completed run.
func (c *Collector) Summarize(scheme string) (Summary, error) {
	tet, err := c.TET()
	if err != nil {
		return Summary{}, err
	}
	art, err := c.ART()
	if err != nil {
		return Summary{}, err
	}
	s := Summary{Scheme: scheme, TET: tet, ART: art}
	for _, pct := range []struct {
		p   float64
		dst *vclock.Duration
	}{{50, &s.P50}, {95, &s.P95}, {99, &s.P99}} {
		v, err := c.PercentileResponse(pct.p)
		if err != nil {
			return Summary{}, err
		}
		*pct.dst = v
	}
	return s, nil
}

// Report is a set of Summaries normalized against a baseline scheme,
// matching Figure 4's presentation (the S^3 bar is defined as 1.0).
type Report struct {
	Baseline string
	Rows     []ReportRow
}

// ReportRow is one scheme's absolute and normalized metrics.
type ReportRow struct {
	Scheme  string
	TET     vclock.Duration
	ART     vclock.Duration
	P50     vclock.Duration
	P95     vclock.Duration
	P99     vclock.Duration
	NormTET float64
	NormART float64
}

// Normalize builds a Report dividing every summary's metrics by the
// baseline scheme's (paper: normalized so S^3 = 1).
func Normalize(baseline string, summaries []Summary) (Report, error) {
	var base *Summary
	for i := range summaries {
		if summaries[i].Scheme == baseline {
			base = &summaries[i]
			break
		}
	}
	if base == nil {
		return Report{}, fmt.Errorf("metrics: baseline scheme %q not among summaries", baseline)
	}
	if base.TET <= 0 || base.ART <= 0 {
		return Report{}, fmt.Errorf("metrics: baseline %q has non-positive metrics %+v", baseline, *base)
	}
	rep := Report{Baseline: baseline}
	for _, s := range summaries {
		rep.Rows = append(rep.Rows, ReportRow{
			Scheme:  s.Scheme,
			TET:     s.TET,
			ART:     s.ART,
			P50:     s.P50,
			P95:     s.P95,
			P99:     s.P99,
			NormTET: s.TET.Seconds() / base.TET.Seconds(),
			NormART: s.ART.Seconds() / base.ART.Seconds(),
		})
	}
	return rep, nil
}

// Row returns the report row for a scheme.
func (r Report) Row(scheme string) (ReportRow, bool) {
	for _, row := range r.Rows {
		if row.Scheme == scheme {
			return row, true
		}
	}
	return ReportRow{}, false
}

// String renders the report as an aligned table sorted by scheme name,
// with the baseline first.
func (r Report) String() string {
	rows := make([]ReportRow, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool {
		if (rows[i].Scheme == r.Baseline) != (rows[j].Scheme == r.Baseline) {
			return rows[i].Scheme == r.Baseline
		}
		return rows[i].Scheme < rows[j].Scheme
	})
	out := fmt.Sprintf("%-10s %12s %12s %12s %12s %12s %9s %9s\n",
		"scheme", "TET", "ART", "p50", "p95", "p99", "TET/base", "ART/base")
	for _, row := range rows {
		out += fmt.Sprintf("%-10s %12s %12s %12s %12s %12s %9.2f %9.2f\n",
			row.Scheme, row.TET, row.ART, row.P50, row.P95, row.P99, row.NormTET, row.NormART)
	}
	return out
}
