package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same name returns the same instrument.
	if reg.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := reg.Gauge("g", "a gauge")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter should panic")
		}
	}()
	reg.Gauge("x", "")
}

func TestRegistryRejectsBadName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	NewRegistry().Counter("bad name!", "")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds should panic")
		}
	}()
	NewRegistry().Histogram("h", "", []float64{1, 1})
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", "", []float64{10, 20, 30})
	// 10 observations uniformly in (0,10]: quantiles interpolate.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	// +Inf observations clamp to the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 30 {
		t.Fatalf("p100 with overflow = %v, want 30", got)
	}
	if got := new(Histogram).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(1, 2, 3); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("LinearBuckets = %v", got)
	}
	if got := ExponentialBuckets(1, 2, 4); got[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("s3_rounds_total", "rounds launched").Add(3)
	reg.Gauge("s3_queue_depth", "queue depth").Set(2)
	h := reg.Histogram("s3_job_response_seconds", "response times", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(9)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE s3_rounds_total counter",
		"s3_rounds_total 3",
		"# TYPE s3_queue_depth gauge",
		"s3_queue_depth 2",
		"# TYPE s3_job_response_seconds histogram",
		`s3_job_response_seconds_bucket{le="1"} 1`,
		`s3_job_response_seconds_bucket{le="5"} 2`,
		`s3_job_response_seconds_bucket{le="+Inf"} 3`,
		"s3_job_response_seconds_sum 12.5",
		"s3_job_response_seconds_count 3",
		"# HELP s3_rounds_total rounds launched",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Metrics sort by name: histogram before gauge before counter here.
	if strings.Index(out, "s3_job_response_seconds") > strings.Index(out, "s3_queue_depth") {
		t.Errorf("exposition not sorted by name:\n%s", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		rm := NewRunMetrics(reg)
		rm.JobResponse.Observe(12.25)
		rm.JobResponse.Observe(98.5)
		rm.RoundsTotal.Add(7)
		rm.QueueDepth.Set(3)
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("identical registries rendered differently:\n%s\n----\n%s", a, b)
	}
}

// TestConcurrentRegistryExactCounts hammers Add/Observe from writers
// while readers render snapshots, then checks totals are exact — no
// lost updates, no torn reads.
func TestConcurrentRegistryExactCounts(t *testing.T) {
	const (
		writers = 8
		perG    = 1000
	)
	reg := NewRegistry()
	c := reg.Counter("hits_total", "")
	h := reg.Histogram("lat_seconds", "", []float64{0.5, 1, 2})
	g := reg.Gauge("depth", "")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%4) * 0.5)
				g.Set(float64(i))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 50; i++ {
				buf.Reset()
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = h.Snapshot()
				_ = h.Quantile(0.95)
			}
		}()
	}
	// Concurrent get-or-create of the same instruments must return the
	// originals, never fork state.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if reg.Counter("hits_total", "") != c {
					t.Error("Counter forked under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*perG {
		t.Fatalf("counter = %v, want %d", got, writers*perG)
	}
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*perG)
	}
	var sum uint64
	for _, n := range s.Counts {
		sum += n
	}
	if sum != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", sum, s.Count)
	}
}

func TestNewRunMetricsRegistersEverything(t *testing.T) {
	reg := NewRegistry()
	rm := NewRunMetrics(reg)
	rm.JobResponse.Observe(1)
	rm.RoundDuration.Observe(2)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"s3_job_response_seconds_bucket",
		"s3_round_seconds_bucket",
		"s3_rounds_total",
		"s3_queue_depth",
		"s3_virtual_time_seconds",
		"s3_requeued_rounds_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
	// Idempotent: a second NewRunMetrics on the same registry reuses
	// the same instruments.
	rm2 := NewRunMetrics(reg)
	if rm2.JobResponse != rm.JobResponse {
		t.Fatal("NewRunMetrics forked instruments")
	}
}
