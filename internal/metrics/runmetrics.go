package metrics

// Standard bucket layouts. Durations cover the sims' virtual seconds
// (sub-second stages up to multi-thousand-second heavy runs); counts
// cover batch widths and rounds-per-job on a 40-node cluster.
var (
	// DurationBuckets are upper bounds in seconds.
	DurationBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	// CountBuckets are upper bounds for small integer distributions.
	CountBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
)

// RunMetrics bundles the standard instruments a driver run records,
// created against one Registry so /metrics exposes them all. Every
// field is safe for concurrent use; the whole struct may be nil-checked
// once and then used freely.
type RunMetrics struct {
	// JobResponse observes each surviving job's submission→completion
	// interval in seconds.
	JobResponse *Histogram
	// JobWaiting observes each job's submission→first-round interval.
	JobWaiting *Histogram
	// JobRounds observes how many rounds each completed job rode.
	JobRounds *Histogram
	// RoundDuration observes each round's total stage work
	// (scan + reduce), which is identical between serial and pipelined
	// execution of the same priced workload.
	RoundDuration *Histogram
	// RoundScan and RoundReduce observe the stage components when the
	// executor splits stages.
	RoundScan   *Histogram
	RoundReduce *Histogram
	// BatchWidth observes how many sub-jobs shared each round's scan.
	BatchWidth *Histogram

	RoundsTotal         *Counter
	JobsSubmitted       *Counter
	JobsCompleted       *Counter
	JobsFailed          *Counter
	RetriesTotal        *Counter
	FailedAttemptsTotal *Counter
	BlacklistedNodes    *Counter
	RequeuedRounds      *Counter
	RequeuedSubJobs     *Counter
	CacheHits           *Counter
	CacheMisses         *Counter
	CacheEvictions      *Counter
	CachePrefetches     *Counter
	CachePrefetchFailed *Counter

	// CacheHitRatio is hits/(hits+misses) at the end of the run; CacheBytes
	// is the cached footprint and CachePinnedBytes its pin-protected part.
	// All stay zero when caching is off.
	CacheHitRatio    *Gauge
	CacheBytes       *Gauge
	CachePinnedBytes *Gauge

	// HeartbeatMisses counts control-plane heartbeat deadlines missed by
	// registered workers; WorkerReconnects counts restarted workers
	// re-registering under their old identity. Both stay zero outside
	// dynamic-membership cluster runs.
	HeartbeatMisses  *Counter
	WorkerReconnects *Counter

	// WorkersConnected is the number of live (joined or suspect) workers
	// in the cluster membership table, sampled whenever it changes.
	WorkersConnected *Gauge

	// JournalAppends counts records appended to the write-ahead journal;
	// JournalBytes is the journal file's current size. Both stay zero
	// when the daemon runs without -journal.
	JournalAppends *Counter
	JournalBytes   *Gauge
	// Recoveries counts journal recoveries this master has performed
	// over the journal's lifetime (replayed recovered records plus this
	// boot's); JobsRecovered counts jobs carried across the most recent
	// restart, resumed and resubmitted alike.
	Recoveries    *Counter
	JobsRecovered *Counter

	// QueueDepth is the number of submitted-but-incomplete jobs after
	// the most recent settled round.
	QueueDepth *Gauge
	// AdmissionQueue is the number of live-submitted jobs accepted by
	// the arrival source but not yet admitted into the scheduler,
	// sampled after each admission batch. Stays zero for trace replays,
	// whose arrivals deliver the moment they are due.
	AdmissionQueue *Gauge
	// VirtualTime is the run clock at last update, in seconds.
	VirtualTime *Gauge
}

// NewRunMetrics registers the standard run instruments on reg.
func NewRunMetrics(reg *Registry) *RunMetrics {
	return &RunMetrics{
		JobResponse:   reg.Histogram("s3_job_response_seconds", "per-job submission-to-completion time", DurationBuckets),
		JobWaiting:    reg.Histogram("s3_job_waiting_seconds", "per-job submission-to-first-round time", DurationBuckets),
		JobRounds:     reg.Histogram("s3_job_rounds", "rounds each completed job participated in", CountBuckets),
		RoundDuration: reg.Histogram("s3_round_seconds", "per-round scan+reduce stage work", DurationBuckets),
		RoundScan:     reg.Histogram("s3_round_scan_seconds", "per-round scan/map stage duration", DurationBuckets),
		RoundReduce:   reg.Histogram("s3_round_reduce_seconds", "per-round reduce stage duration", DurationBuckets),
		BatchWidth:    reg.Histogram("s3_round_batch_jobs", "sub-jobs sharing each round's scan", CountBuckets),

		RoundsTotal:         reg.Counter("s3_rounds_total", "rounds launched"),
		JobsSubmitted:       reg.Counter("s3_jobs_submitted_total", "jobs submitted to the scheduler"),
		JobsCompleted:       reg.Counter("s3_jobs_completed_total", "jobs completed"),
		JobsFailed:          reg.Counter("s3_jobs_failed_total", "jobs terminated with an error"),
		RetriesTotal:        reg.Counter("s3_retries_total", "block attempts re-executed after a failure"),
		FailedAttemptsTotal: reg.Counter("s3_failed_attempts_total", "block-read attempts that failed"),
		BlacklistedNodes:    reg.Counter("s3_blacklisted_nodes_total", "nodes marked down after consecutive failures"),
		RequeuedRounds:      reg.Counter("s3_requeued_rounds_total", "lost rounds returned to the scheduler"),
		RequeuedSubJobs:     reg.Counter("s3_requeued_subjobs_total", "sub-jobs riding requeued rounds"),
		CacheHits:           reg.Counter("s3_cache_hits_total", "block reads served from the node-local cache"),
		CacheMisses:         reg.Counter("s3_cache_misses_total", "block reads that went to disk"),
		CacheEvictions:      reg.Counter("s3_cache_evictions_total", "cached blocks discarded to fit the byte budget"),
		CachePrefetches:     reg.Counter("s3_cache_prefetches_total", "speculative readahead loads issued"),
		CachePrefetchFailed: reg.Counter("s3_cache_prefetch_failed_total", "readahead loads that failed"),

		HeartbeatMisses:  reg.Counter("s3_heartbeat_misses_total", "worker heartbeat deadlines missed by the control plane"),
		WorkerReconnects: reg.Counter("s3_worker_reconnects_total", "workers that re-registered after a restart"),

		WorkersConnected: reg.Gauge("s3_workers_connected", "live workers in the cluster membership table"),

		CacheHitRatio:    reg.Gauge("s3_cache_hit_ratio", "cache hits over total reads at end of run"),
		CacheBytes:       reg.Gauge("s3_cache_bytes", "cached byte footprint at end of run"),
		CachePinnedBytes: reg.Gauge("s3_cache_pinned_bytes", "pin-protected cached bytes at end of run"),

		JournalAppends: reg.Counter("s3_journal_appends_total", "records appended to the write-ahead journal"),
		JournalBytes:   reg.Gauge("s3_journal_bytes", "write-ahead journal file size"),
		Recoveries:     reg.Counter("s3_recoveries_total", "journal recoveries performed over the journal's lifetime"),
		JobsRecovered:  reg.Counter("s3_jobs_recovered", "jobs carried across the most recent restart"),

		QueueDepth:     reg.Gauge("s3_queue_depth", "submitted-but-incomplete jobs after the last settled round"),
		AdmissionQueue: reg.Gauge("s3_admission_queue_jobs", "live-submitted jobs awaiting admission into the scheduler"),
		VirtualTime:    reg.Gauge("s3_virtual_time_seconds", "run clock at last update"),
	}
}
