package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// PipelineRow is one workload's serial-vs-pipelined A/B comparison.
type PipelineRow struct {
	Workload     string
	SerialTET    vclock.Duration
	PipelinedTET vclock.Duration
	SerialART    vclock.Duration
	PipelinedART vclock.Duration
	// Overlap is the virtual time of reduce work hidden under later
	// rounds' scans in the pipelined run.
	Overlap vclock.Duration
	// TETGainPct is the TET reduction in percent (positive = pipelining
	// faster).
	TETGainPct float64
	Rounds     int // pipelined round count
}

// PipelineResult is the stage-pipelining study across workloads.
type PipelineResult struct {
	Workers int
	Rows    []PipelineRow
}

func (r PipelineResult) String() string {
	s := fmt.Sprintf("%-14s %12s %12s %8s %12s %10s\n",
		"workload", "serial TET", "piped TET", "gain", "overlap", "rounds")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-14s %12s %12s %7.1f%% %12s %10d\n",
			row.Workload, row.SerialTET, row.PipelinedTET, row.TETGainPct, row.Overlap, row.Rounds)
	}
	return s
}

// pipelineCase is one PipelineStudy workload configuration.
type pipelineCase struct {
	name    string
	weight  float64
	rweight float64
	times   []vclock.Time
}

// PipelineStudy A/B-tests the stage-pipelined runtime against the
// serial round loop: the same S^3 scheduler and cost model, with and
// without reduce-of-round-N overlapping scan-of-round-N+1. The gain
// grows with the reduce share of a round — normal wordcount reduces
// are small (§V Table I: ~1.5 MB of reduce output), the heavy workload
// (200x reduce output, §V-E) gives reduces real weight.
func PipelineStudy(p Params) (PipelineResult, error) {
	return PipelineStudyModes(p, true, true)
}

// PipelineStudyModes runs the study's workloads in the selected
// mode(s); disabling one leaves its columns (and the derived gain and
// overlap) zero. This backs s3bench's -pipeline=on|off|both flag.
func PipelineStudyModes(p Params, serial, pipelined bool) (PipelineResult, error) {
	if !serial && !pipelined {
		return PipelineResult{}, fmt.Errorf("experiments: pipeline study with both modes disabled")
	}
	w, rw := p.HeavyMapW, p.HeavyReduceW
	cases := []pipelineCase{
		{"sparse", 1, 1, p.SparsePattern()},
		{"dense", 1, 1, p.DensePattern()},
		{"heavy-sparse", w, rw, p.SparsePattern()},
		{"heavy-dense", w, rw, p.DensePattern()},
	}
	out := PipelineResult{Workers: driver.DefaultReduceWorkers}
	for _, c := range cases {
		row, err := runPipelineCase(c, p, serial, pipelined)
		if err != nil {
			return PipelineResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runPipelineCase(c pipelineCase, p Params, serialOn, pipelinedOn bool) (PipelineRow, error) {
	metas := workload.WordCountMetas(NumJobs, "input", c.weight, c.rweight)
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: c.times[i]}
	}
	run := func(pipeline bool) (*driver.Result, error) {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return nil, err
		}
		var sched scheduler.Scheduler = core.New(env.Plan, nil)
		exec := newSimExec(env)
		return driver.RunOpts(sched, exec, arrivals, driver.Options{Pipeline: pipeline})
	}
	row := PipelineRow{Workload: c.name}
	if serialOn {
		serial, err := run(false)
		if err != nil {
			return PipelineRow{}, fmt.Errorf("experiments: pipeline %s serial: %w", c.name, err)
		}
		if row.SerialTET, err = serial.Metrics.TET(); err != nil {
			return PipelineRow{}, err
		}
		if row.SerialART, err = serial.Metrics.ART(); err != nil {
			return PipelineRow{}, err
		}
		row.Rounds = serial.Rounds
	}
	if pipelinedOn {
		piped, err := run(true)
		if err != nil {
			return PipelineRow{}, fmt.Errorf("experiments: pipeline %s pipelined: %w", c.name, err)
		}
		if row.PipelinedTET, err = piped.Metrics.TET(); err != nil {
			return PipelineRow{}, err
		}
		if row.PipelinedART, err = piped.Metrics.ART(); err != nil {
			return PipelineRow{}, err
		}
		row.Overlap = piped.Metrics.PipelineOverlap()
		row.Rounds = piped.Rounds
	}
	if serialOn && pipelinedOn {
		row.TETGainPct = 100 * (1 - row.PipelinedTET.Seconds()/row.SerialTET.Seconds())
	}
	return row, nil
}
