package experiments

import (
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// TestPaperClaimsAllHold pins the shipped calibration: every encoded
// qualitative claim from the paper's Figure 4 discussion must hold.
// The simulator is deterministic, so this is a stable regression gate;
// if a cost-model change breaks it, rerun cmd/s3calibrate.
func TestPaperClaimsAllHold(t *testing.T) {
	panels, err := RunAllPanels(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	violations := CheckPaperClaims(panels)
	for _, v := range violations {
		t.Errorf("claim violated: %s", v)
	}
	if n := NumPaperClaims(); n < 20 {
		t.Errorf("only %d claims encoded; expected the full set", n)
	}
}

func TestPanelBasics(t *testing.T) {
	res, err := Fig4Panel("a", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig4a" {
		t.Errorf("ID = %q", res.ID)
	}
	if len(res.Schemes) != 5 {
		t.Errorf("schemes = %d, want 5", len(res.Schemes))
	}
	for name, sr := range res.Schemes {
		if sr.Summary.TET <= 0 || sr.Summary.ART <= 0 {
			t.Errorf("%s: non-positive metrics %+v", name, sr.Summary)
		}
		if sr.Rounds <= 0 || sr.Stats.BlocksScanned <= 0 {
			t.Errorf("%s: no work recorded: %+v", name, sr)
		}
	}
	// The shared-scan point, measured: S3 scans far fewer blocks than
	// FIFO for the same ten jobs.
	s3Scans := res.Schemes["s3"].Stats.BlocksScanned
	fifoScans := res.Schemes["fifo"].Stats.BlocksScanned
	if s3Scans*2 > fifoScans {
		t.Errorf("S3 scanned %d blocks vs FIFO %d; expected <= half", s3Scans, fifoScans)
	}
}

func TestFig4PanelUnknown(t *testing.T) {
	if _, err := Fig4Panel("z", DefaultParams()); err == nil {
		t.Error("unknown panel should fail")
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(0, 64, NormalModel()); err == nil {
		t.Error("zero input should fail")
	}
	if _, err := NewEnv(160, 0, NormalModel()); err == nil {
		t.Error("zero block size should fail")
	}
	env, err := NewEnv(160, 64, NormalModel())
	if err != nil {
		t.Fatal(err)
	}
	if env.Plan.NumSegments() != 64 {
		t.Errorf("segments = %d, want 64 (2560 blocks / 40 slots)", env.Plan.NumSegments())
	}
	if env.Plan.File().NumBlocks != 2560 {
		t.Errorf("blocks = %d, want 2560", env.Plan.File().NumBlocks)
	}
}

func TestRunPanelArityMismatch(t *testing.T) {
	env, err := NewEnv(160, 64, NormalModel())
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunPanel("x", env, nil, DefaultParams().SparsePattern(), PaperSchemes())
	if err == nil {
		t.Error("meta/time arity mismatch should fail")
	}
}

// A single normal job alone must take roughly the paper's Table I
// anchor: ~240 s.
func TestSingleJobAnchor(t *testing.T) {
	p := DefaultParams()
	env, err := NewEnv(WordcountGB, 64, p.Model)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPanel("anchor", env,
		[]scheduler.JobMeta{{ID: 1, File: "input", Weight: 1, ReduceWeight: 1}},
		[]vclock.Time{0},
		[]SchemeSpec{{Name: "s3", Make: func(pl *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return core.New(pl, nil), nil
		}}})
	if err != nil {
		t.Fatal(err)
	}
	tet := res.Schemes["s3"].Summary.TET.Seconds()
	if tet < 200 || tet > 290 {
		t.Errorf("single job = %.0fs, want ~240s (paper Table I)", tet)
	}
}

func TestNamedPanelWrappers(t *testing.T) {
	// The convenience wrappers delegate to Fig4Panel with defaults.
	for _, tc := range []struct {
		name string
		fn   func() (PanelResult, error)
		id   string
	}{
		{"Fig4a", Fig4a, "fig4a"},
		{"Fig4b", Fig4b, "fig4b"},
		{"Fig4c", Fig4c, "fig4c"},
		{"Fig4d", Fig4d, "fig4d"},
		{"Fig4e", Fig4e, "fig4e"},
		{"Fig4f", Fig4f, "fig4f"},
	} {
		res, err := tc.fn()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.ID != tc.id || len(res.Schemes) != 5 {
			t.Errorf("%s: ID=%q schemes=%d", tc.name, res.ID, len(res.Schemes))
		}
	}
}

func TestFig3SingleMatchesSweepPoint(t *testing.T) {
	cfg := DefaultFig3Config()
	point, err := Fig3Single(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if point.Jobs != 3 || point.BlockReads != int64(cfg.Blocks) {
		t.Errorf("point = %+v", point)
	}
	if _, err := Fig3Single(cfg, 0); err == nil {
		t.Error("zero jobs should fail")
	}
}
