package experiments

import "fmt"

// The paper's qualitative claims about Figure 4 (§V-D..G), encoded as
// machine-checkable predicates. Reproduction targets the *shape* of
// the results — orderings, approximate ratios, crossovers — not the
// authors' absolute seconds. CheckPaperClaims is used both by the
// calibration harness (which searches parameters until all claims
// hold) and by the test suite (which pins the shipped calibration).

// claim is one predicate over the panel set.
type claim struct {
	id   string
	desc string
	ok   func(p map[string]PanelResult) bool
}

func tet(p PanelResult, scheme string) float64 {
	return p.Schemes[scheme].Summary.TET.Seconds()
}

func art(p PanelResult, scheme string) float64 {
	return p.Schemes[scheme].Summary.ART.Seconds()
}

var mrsVariants = []string{"mrs1", "mrs2", "mrs3"}

func paperClaims() []claim {
	return []claim{
		// --- Figure 4(a): sparse, normal, 64 MB ---
		{"a1", "fig4a: S3 has the lowest TET of all schemes", func(p map[string]PanelResult) bool {
			a := p["a"]
			for _, s := range []string{"fifo", "mrs1", "mrs2", "mrs3"} {
				if tet(a, s) <= tet(a, "s3") {
					return false
				}
			}
			return true
		}},
		{"a2", "fig4a: S3 has the lowest ART of all schemes", func(p map[string]PanelResult) bool {
			a := p["a"]
			for _, s := range []string{"fifo", "mrs1", "mrs2", "mrs3"} {
				if art(a, s) <= art(a, "s3") {
					return false
				}
			}
			return true
		}},
		{"a3", "fig4a: FIFO TET ≈ 2.2x S3 (within [1.5,3.0])", func(p map[string]PanelResult) bool {
			r := tet(p["a"], "fifo") / tet(p["a"], "s3")
			return r >= 1.5 && r <= 3.0
		}},
		{"a4", "fig4a: FIFO ART ≈ 2.5x S3 (within [1.8,4.0])", func(p map[string]PanelResult) bool {
			r := art(p["a"], "fifo") / art(p["a"], "s3")
			return r >= 1.8 && r <= 4.0
		}},
		{"a5", "fig4a: MRShare TET within ~1.03-1.32x S3 (allow [1.005,1.7])", func(p map[string]PanelResult) bool {
			for _, s := range mrsVariants {
				r := tet(p["a"], s) / tet(p["a"], "s3")
				if r < 1.005 || r > 1.7 {
					return false
				}
			}
			return true
		}},
		{"a6", "fig4a: MRS1 has very high ART (worst among MRShare)", func(p map[string]PanelResult) bool {
			a := p["a"]
			return art(a, "mrs1") > art(a, "mrs2") && art(a, "mrs1") > art(a, "mrs3")
		}},
		{"a7", "fig4a: MRS2 has the shortest TET among MRShare (ties allowed)", func(p map[string]PanelResult) bool {
			a := p["a"]
			return tet(a, "mrs2") <= 1.01*tet(a, "mrs1") && tet(a, "mrs2") <= 1.01*tet(a, "mrs3")
		}},
		{"a8", "fig4a: MRS3 has the best ART among MRShare", func(p map[string]PanelResult) bool {
			a := p["a"]
			return art(a, "mrs3") <= art(a, "mrs1") && art(a, "mrs3") <= art(a, "mrs2")
		}},

		// --- Figure 4(b): dense, normal, 64 MB ---
		{"b1", "fig4b: MRS1 beats S3 on TET and ART (dense favors batching)", func(p map[string]PanelResult) bool {
			b := p["b"]
			return tet(b, "mrs1") <= 1.01*tet(b, "s3") && art(b, "mrs1") <= 1.01*art(b, "s3")
		}},
		{"b2", "fig4b: MRS3 is much worse than S3 (≥1.5x TET, ≥1.25x ART)", func(p map[string]PanelResult) bool {
			b := p["b"]
			return tet(b, "mrs3") >= 1.5*tet(b, "s3") && art(b, "mrs3") >= 1.25*art(b, "s3")
		}},
		{"b3", "fig4b: FIFO absolute TET barely changes from sparse to dense (±5%)", func(p map[string]PanelResult) bool {
			r := tet(p["b"], "fifo") / tet(p["a"], "fifo")
			return r >= 0.95 && r <= 1.05
		}},
		{"b4", "fig4b: S3 beats MRS2 and MRS3 in both metrics", func(p map[string]PanelResult) bool {
			b := p["b"]
			return tet(b, "s3") < tet(b, "mrs2") && tet(b, "s3") < tet(b, "mrs3") &&
				art(b, "s3") < art(b, "mrs2") && art(b, "s3") < art(b, "mrs3")
		}},

		// --- Figure 4(c): sparse, heavy, 64 MB ---
		{"c1", "fig4c: S3 TET grows ≈40% over the normal workload (within [1.2,1.8])", func(p map[string]PanelResult) bool {
			r := tet(p["c"], "s3") / tet(p["a"], "s3")
			return r >= 1.2 && r <= 1.8
		}},
		{"c2", "fig4c: MRS2 TET at or below S3 (paper: saves 15%)", func(p map[string]PanelResult) bool {
			return tet(p["c"], "mrs2") <= 1.02*tet(p["c"], "s3")
		}},
		{"c3", "fig4c: MRS3 TET grows ≈40% over its own normal-workload TET (≥1.2x)", func(p map[string]PanelResult) bool {
			return tet(p["c"], "mrs3") >= 1.2*tet(p["a"], "mrs3")
		}},
		// The paper says all MRShare variants "do not perform well in
		// ART" under the heavy workload. MRS1's batch-formation wait
		// reproduces cleanly; MRS2/MRS3's penalty conflicts with claim
		// c2 in any linear cost model (see EXPERIMENTS.md), so only
		// MRS1 is pinned here.
		{"c4", "fig4c: MRS1 has worse ART than S3 under the heavy workload", func(p map[string]PanelResult) bool {
			return art(p["c"], "mrs1") > art(p["c"], "s3")
		}},

		// --- Figure 4(d): sparse, normal, 128 MB ---
		{"d1", "fig4d: S3's TET edge over FIFO shrinks at 128 MB (smaller ratio than at 64 MB, still >1)", func(p map[string]PanelResult) bool {
			r128 := tet(p["d"], "fifo") / tet(p["d"], "s3")
			r64 := tet(p["a"], "fifo") / tet(p["a"], "s3")
			return r128 > 1.0 && r128 < r64
		}},
		{"d2", "fig4d: S3 still clearly wins ART vs FIFO (≥1.3x)", func(p map[string]PanelResult) bool {
			return art(p["d"], "fifo") >= 1.3*art(p["d"], "s3")
		}},
		{"d3", "fig4d: MRShare beats S3 in neither TET nor ART (1% tie tolerance)", func(p map[string]PanelResult) bool {
			for _, s := range mrsVariants {
				if tet(p["d"], s) < 0.99*tet(p["d"], "s3") || art(p["d"], s) < 0.99*art(p["d"], "s3") {
					return false
				}
			}
			return true
		}},
		{"d4", "fig4d: 128 MB blocks give the fastest single-scheme processing (S3 TET below 64 MB run)", func(p map[string]PanelResult) bool {
			return tet(p["d"], "s3") < tet(p["a"], "s3")
		}},

		// --- Figure 4(e): sparse, normal, 32 MB ---
		{"e1", "fig4e: all schemes slower than at 64 MB (more tasks, more overhead)", func(p map[string]PanelResult) bool {
			for _, s := range []string{"s3", "fifo", "mrs1", "mrs2", "mrs3"} {
				if tet(p["e"], s) <= tet(p["a"], s) {
					return false
				}
			}
			return true
		}},
		{"e2", "fig4e: MRShare TET 1.35-1.72x S3 (allow [1.005,2.0])", func(p map[string]PanelResult) bool {
			for _, s := range mrsVariants {
				r := tet(p["e"], s) / tet(p["e"], "s3")
				if r < 1.005 || r > 2.0 {
					return false
				}
			}
			return true
		}},
		{"e3", "fig4e: MRShare ART 2-3.86x S3 (allow [1.25,4.3])", func(p map[string]PanelResult) bool {
			for _, s := range mrsVariants {
				r := art(p["e"], s) / art(p["e"], "s3")
				if r < 1.25 || r > 4.3 {
					return false
				}
			}
			return true
		}},
		{"e4", "fig4e: S3 keeps its gain (best TET and ART)", func(p map[string]PanelResult) bool {
			e := p["e"]
			for _, s := range []string{"fifo", "mrs1", "mrs2", "mrs3"} {
				if tet(e, s) <= tet(e, "s3") || art(e, s) <= art(e, "s3") {
					return false
				}
			}
			return true
		}},

		// --- Figure 4(f): selection workload ---
		{"f1", "fig4f: S3 outperforms MRShare in both TET and ART", func(p map[string]PanelResult) bool {
			f := p["f"]
			for _, s := range mrsVariants {
				if tet(f, s) <= tet(f, "s3") || art(f, s) <= art(f, "s3") {
					return false
				}
			}
			return true
		}},
		{"f2", "fig4f: FIFO much worse than S3 (TET ≥1.7x, ART ≥2x)", func(p map[string]PanelResult) bool {
			f := p["f"]
			return tet(f, "fifo") >= 1.7*tet(f, "s3") && art(f, "fifo") >= 2*art(f, "s3")
		}},
	}
}

// RunAllPanels runs every Figure 4 panel under p.
func RunAllPanels(p Params) (map[string]PanelResult, error) {
	out := make(map[string]PanelResult, 6)
	for _, panel := range []string{"a", "b", "c", "d", "e", "f"} {
		res, err := Fig4Panel(panel, p)
		if err != nil {
			return nil, fmt.Errorf("panel %s: %w", panel, err)
		}
		out[panel] = res
	}
	return out, nil
}

// CheckPaperClaims evaluates every encoded claim against the panel set
// and returns the ids+descriptions of violated claims (empty when the
// reproduction matches the paper's shape).
func CheckPaperClaims(panels map[string]PanelResult) []string {
	var violations []string
	for _, c := range paperClaims() {
		if !c.ok(panels) {
			violations = append(violations, fmt.Sprintf("%s: %s", c.id, c.desc))
		}
	}
	return violations
}

// NumPaperClaims reports how many claims are encoded.
func NumPaperClaims() int { return len(paperClaims()) }
