// Package experiments configures and runs every experiment in the
// paper's evaluation (§V): Table I's workload profile, Figure 3's
// combined-job cost study, and Figure 4's six scheduling comparisons,
// plus the ablations DESIGN.md calls out.
//
// Figure 4 runs on the discrete-event simulator at the paper's full
// scale (40 nodes, 160 GB / 400 GB inputs) with a cost model
// calibrated so a normal wordcount job takes ≈240 s alone (Table I).
// Table I and Figure 3 run on the real in-process MapReduce engine
// over scaled-down generated data, because they measure execution
// profile rather than arrival timing.
package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Paper-scale constants (§V-A).
const (
	// Nodes is the paper's cluster: 40 slaves, one map slot each.
	Nodes = 40
	// SlotsPerNode is 1 in every paper experiment.
	SlotsPerNode = 1
	// WordcountGB is the wordcount input size (4 GB/node × 40).
	WordcountGB = 160
	// SelectionGB is the lineitem input size (10 GB/node × 40).
	SelectionGB = 400
	// NumJobs is the job count in every Figure 4 panel.
	NumJobs = 10
)

// NormalModel is the calibrated cost model for the normal wordcount
// workload at 64 MB blocks. With 2560 blocks in 64 segments of 40, one
// job alone takes ≈229 s (paper Table I: ≈240 s), and combining 10
// jobs costs ≈25% extra (paper Figure 3: 25.5%).
// The base rates are fitted to the paper's own anchor points: a normal
// wordcount job takes ≈240 s alone at 64 MB blocks (Table I), 128 MB
// blocks give the fastest absolute processing and 32 MB the slowest
// (§V-F) — which pins ScanMBps ≈ 68 and ≈2.8 s of fixed per-task cost.
func NormalModel() sim.CostModel {
	return sim.CostModel{
		ScanMBps:       68,    // sequential scan rate per slot
		MapMBps:        2048,  // light wordcount map function
		TaskOverhead:   2.5,   // task launch + heartbeat, per block
		DispatchPerJob: 0.05,  // merged-record dispatch per extra job
		RoundOverhead:  0.3,   // wave coordination
		JobSetup:       0.2,   // MR job submission (per S^3 sub-job!)
		SharePenalty:   0.01,  // merged scan interference
		TagPenalty:     0,     // MRShare tagging; ablation knob
		ReducePerRound: 0.015, // small reduce output (1.5 MB)
		ReduceSetup:    0.02,  // reduce-phase setup/commit per weight
	}
}

// HeavyWeights returns the (map, reduce) weights that turn the normal
// model into the heavy workload: 10x map output and 200x reduce output
// make one job ≈1.5x slower alone (§V-B, §V-E).
func HeavyWeights() (mapWeight, reduceWeight float64) { return 14, 25 }

// Env bundles the simulator state for one Figure 4 panel.
type Env struct {
	Store   *dfs.Store
	Plan    *dfs.SegmentPlan
	Cluster *sim.Cluster
	Model   sim.CostModel
}

// NewEnv builds a paper-scale simulation environment: a cluster of
// Nodes nodes over a metadata-only file of inputGB gigabytes in
// blockMB-megabyte blocks, segmented at one block per map slot.
func NewEnv(inputGB, blockMB int, model sim.CostModel) (*Env, error) {
	return NewEnvReplicated(inputGB, blockMB, 1, model)
}

// NewEnvReplicated is NewEnv with an explicit replication factor. The
// fault study uses replicas >= 2 so a single crashed node leaves every
// block readable from a surviving holder.
func NewEnvReplicated(inputGB, blockMB, replicas int, model sim.CostModel) (*Env, error) {
	if inputGB <= 0 || blockMB <= 0 {
		return nil, fmt.Errorf("experiments: invalid sizes inputGB=%d blockMB=%d", inputGB, blockMB)
	}
	numBlocks := inputGB * 1024 / blockMB
	store, err := dfs.NewStore(Nodes, replicas)
	if err != nil {
		return nil, err
	}
	f, err := store.AddMetaFile("input", numBlocks, int64(blockMB)<<20)
	if err != nil {
		return nil, err
	}
	plan, err := dfs.PlanSegments(f, Nodes*SlotsPerNode)
	if err != nil {
		return nil, err
	}
	return &Env{
		Store:   store,
		Plan:    plan,
		Cluster: sim.NewCluster(Nodes, SlotsPerNode),
		Model:   model,
	}, nil
}

// SchemeResult is one scheduling scheme's outcome in a panel.
type SchemeResult struct {
	Summary metrics.Summary
	Rounds  int
	Stats   sim.Stats
}

// PanelResult is one Figure 4 panel: all schemes, normalized to S^3.
type PanelResult struct {
	ID      string
	Report  metrics.Report
	Schemes map[string]SchemeResult
}

// SchemeSpec names a scheme and builds a fresh scheduler for a plan.
type SchemeSpec struct {
	Name string
	Make func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error)
}

// PaperSchemes returns the five schemes of Figure 4: S^3, FIFO, and
// the three MRShare batching variants (§V-D).
func PaperSchemes() []SchemeSpec {
	return []SchemeSpec{
		{Name: "s3", Make: func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return core.New(p, nil), nil
		}},
		{Name: "fifo", Make: func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewFIFO(p, nil), nil
		}},
		{Name: "mrs1", Make: func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewMRShare(p, []int{10}, nil)
		}},
		{Name: "mrs2", Make: func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewMRShare(p, []int{6, 4}, nil)
		}},
		{Name: "mrs3", Make: func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewMRShare(p, []int{3, 3, 4}, nil)
		}},
	}
}

// RunPanel runs every scheme over the same arrival sequence in env and
// normalizes the results against S^3, like Figure 4's presentation.
func RunPanel(id string, env *Env, metas []scheduler.JobMeta, times []vclock.Time, schemes []SchemeSpec) (PanelResult, error) {
	if len(metas) != len(times) {
		return PanelResult{}, fmt.Errorf("experiments: %d jobs but %d arrival times", len(metas), len(times))
	}
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}
	out := PanelResult{ID: id, Schemes: make(map[string]SchemeResult)}
	var summaries []metrics.Summary
	for _, spec := range schemes {
		sched, err := spec.Make(env.Plan)
		if err != nil {
			return PanelResult{}, fmt.Errorf("experiments: building %s: %w", spec.Name, err)
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
		res, err := driver.Run(sched, exec, arrivals)
		if err != nil {
			return PanelResult{}, fmt.Errorf("experiments: running %s: %w", spec.Name, err)
		}
		sum, err := res.Metrics.Summarize(spec.Name)
		if err != nil {
			return PanelResult{}, fmt.Errorf("experiments: summarizing %s: %w", spec.Name, err)
		}
		summaries = append(summaries, sum)
		out.Schemes[spec.Name] = SchemeResult{Summary: sum, Rounds: res.Rounds, Stats: exec.Stats()}
	}
	rep, err := metrics.Normalize("s3", summaries)
	if err != nil {
		return PanelResult{}, err
	}
	out.Report = rep
	return out, nil
}

// Params collects everything the Figure 4 panels depend on, so the
// calibration harness (cmd/s3calibrate) can search over them and tests
// can pin them.
type Params struct {
	Model sim.CostModel
	// IntraGap/InterGap shape the sparse pattern: three groups of
	// 3, 3 and 4 jobs, jobs IntraGap apart within a group, group
	// starts InterGap apart (§V-D, Figure 1(b)).
	IntraGap vclock.Duration
	InterGap vclock.Duration
	// DenseGap is the submission spacing in the dense pattern.
	DenseGap vclock.Duration
	// HeavyMapW/HeavyReduceW are the heavy workload's weights.
	HeavyMapW    float64
	HeavyReduceW float64
	// SelGapScale stretches the sparse gaps for the selection panel,
	// whose jobs are 2.5x longer (400 GB input).
	SelGapScale float64
}

// DefaultParams returns the calibration used throughout the repo; see
// EXPERIMENTS.md for how it was fit against the paper's reported
// ratios.
func DefaultParams() Params {
	w, rw := HeavyWeights()
	return Params{
		Model:        NormalModel(),
		IntraGap:     25,
		InterGap:     230,
		DenseGap:     5,
		HeavyMapW:    w,
		HeavyReduceW: rw,
		SelGapScale:  2.5,
	}
}

// SparsePattern is the paper's sparse submission pattern under p.
func (p Params) SparsePattern() []vclock.Time {
	return workload.SparseGroups([]int{3, 3, 4}, p.IntraGap, p.InterGap)
}

// DensePattern is the dense submission pattern under p.
func (p Params) DensePattern() []vclock.Time {
	return workload.DensePattern(NumJobs, p.DenseGap)
}

// Fig4Panel runs one Figure 4 panel ("a".."f") under p.
func Fig4Panel(panel string, p Params) (PanelResult, error) {
	type cfg struct {
		inputGB int
		blockMB int
		weight  float64
		rweight float64
		times   []vclock.Time
		sel     bool
	}
	var c cfg
	switch panel {
	case "a":
		c = cfg{WordcountGB, 64, 1, 1, p.SparsePattern(), false}
	case "b":
		c = cfg{WordcountGB, 64, 1, 1, p.DensePattern(), false}
	case "c":
		c = cfg{WordcountGB, 64, p.HeavyMapW, p.HeavyReduceW, p.SparsePattern(), false}
	case "d":
		c = cfg{WordcountGB, 128, 1, 1, p.SparsePattern(), false}
	case "e":
		c = cfg{WordcountGB, 32, 1, 1, p.SparsePattern(), false}
	case "f":
		c = cfg{SelectionGB, 64, 1, 1, workload.SparseGroups([]int{3, 3, 4},
			vclock.Duration(float64(p.IntraGap)*p.SelGapScale),
			vclock.Duration(float64(p.InterGap)*p.SelGapScale)), true}
	default:
		return PanelResult{}, fmt.Errorf("experiments: unknown panel %q", panel)
	}
	env, err := NewEnv(c.inputGB, c.blockMB, p.Model)
	if err != nil {
		return PanelResult{}, err
	}
	var metas []scheduler.JobMeta
	if c.sel {
		metas = workload.SelectionMetas(NumJobs, "input", c.weight, c.rweight)
	} else {
		metas = workload.WordCountMetas(NumJobs, "input", c.weight, c.rweight)
	}
	return RunPanel("fig4"+panel, env, metas, c.times, PaperSchemes())
}

// Fig4a: sparse pattern, normal workload, 64 MB blocks.
func Fig4a() (PanelResult, error) { return Fig4Panel("a", DefaultParams()) }

// Fig4b: dense pattern, normal workload, 64 MB blocks.
func Fig4b() (PanelResult, error) { return Fig4Panel("b", DefaultParams()) }

// Fig4c: sparse pattern, heavy workload, 64 MB blocks.
func Fig4c() (PanelResult, error) { return Fig4Panel("c", DefaultParams()) }

// Fig4d: sparse pattern, normal workload, 128 MB blocks.
func Fig4d() (PanelResult, error) { return Fig4Panel("d", DefaultParams()) }

// Fig4e: sparse pattern, normal workload, 32 MB blocks.
func Fig4e() (PanelResult, error) { return Fig4Panel("e", DefaultParams()) }

// Fig4f: selection workload over the 400 GB lineitem table, sparse
// pattern, 64 MB blocks (§V-G).
func Fig4f() (PanelResult, error) { return Fig4Panel("f", DefaultParams()) }
