package experiments

import (
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

func TestAblationSlotChecking(t *testing.T) {
	res, err := AblationSlotChecking(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	nocheck, ok1 := res.Row("s3-nocheck")
	checked, ok2 := res.Row("s3-slotcheck")
	if !ok1 || !ok2 {
		t.Fatalf("rows missing: %+v", res)
	}
	// Excluding the 0.25x straggler must beat being paced by it.
	if checked.TET >= nocheck.TET {
		t.Errorf("slot checking TET %v not better than straggler-paced %v", checked.TET, nocheck.TET)
	}
	if checked.ART >= nocheck.ART {
		t.Errorf("slot checking ART %v not better than straggler-paced %v", checked.ART, nocheck.ART)
	}
	// And the improvement must be substantial (straggler is 4x slow;
	// excluding it roughly halves TET).
	if nocheck.TET.Seconds() < 1.8*checked.TET.Seconds() {
		t.Errorf("gain too small: %v vs %v", nocheck.TET, checked.TET)
	}
}

func TestAblationDynAdjust(t *testing.T) {
	res, err := AblationDynAdjust(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dyn, _ := res.Row("s3-dynamic")
	static, _ := res.Row("s3-static")
	// Parking arrivals serializes everything: worse on both metrics,
	// with strictly more scans.
	if static.TET <= dyn.TET || static.ART <= dyn.ART {
		t.Errorf("static (%v/%v) should lose to dynamic (%v/%v)", static.TET, static.ART, dyn.TET, dyn.ART)
	}
	if static.Extra["blockScans"] <= dyn.Extra["blockScans"] {
		t.Errorf("static scans %v should exceed dynamic %v", static.Extra["blockScans"], dyn.Extra["blockScans"])
	}
}

func TestAblationSegmentSize(t *testing.T) {
	res, err := AblationSegmentSize(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	ideal, _ := res.Row("seg-40")
	small, _ := res.Row("seg-20")
	// Half-width segments leave half the cluster idle every round
	// while doubling per-round overheads: strictly worse TET.
	if small.TET <= ideal.TET {
		t.Errorf("seg-20 TET %v should exceed ideal seg-40 %v", small.TET, ideal.TET)
	}
	// Double-width segments trade admission granularity against
	// per-round overhead amortization; the two nearly cancel, so both
	// metrics stay within 25% of the ideal either way.
	large, _ := res.Row("seg-80")
	if r := large.TET.Seconds() / ideal.TET.Seconds(); r > 1.25 || r < 0.8 {
		t.Errorf("seg-80 TET %v too far from ideal %v", large.TET, ideal.TET)
	}
	if r := large.ART.Seconds() / ideal.ART.Seconds(); r > 1.25 || r < 0.8 {
		t.Errorf("seg-80 ART %v too far from ideal %v", large.ART, ideal.ART)
	}
}

func TestAblationCircularScan(t *testing.T) {
	res, err := AblationCircularScan(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	circ, _ := res.Row("s3-circular")
	restart, _ := res.Row("s3-restart")
	if restart.ART <= circ.ART {
		t.Errorf("restart-at-beginning ART %v should exceed circular %v", restart.ART, circ.ART)
	}
	if restart.TET <= circ.TET {
		t.Errorf("restart-at-beginning TET %v should exceed circular %v", restart.TET, circ.TET)
	}
}

func TestAblationPartialAgg(t *testing.T) {
	res, err := AblationPartialAgg()
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := res.Row("no-partial-agg")
	agg, _ := res.Row("partial-agg")
	// Identical outputs…
	if plain.Extra["outputRecords"] != agg.Extra["outputRecords"] {
		t.Errorf("output records differ: %v vs %v", plain.Extra["outputRecords"], agg.Extra["outputRecords"])
	}
	// …with much less data entering the reduce phase.
	if agg.Extra["reduceInputRecords"] >= plain.Extra["reduceInputRecords"] {
		t.Errorf("partial agg reduce input %v not below plain %v",
			agg.Extra["reduceInputRecords"], plain.Extra["reduceInputRecords"])
	}
}

func TestAllAblations(t *testing.T) {
	res, err := AllAblations(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("ablations = %d, want 5", len(res))
	}
	seen := map[string]bool{}
	for _, a := range res {
		if a.String() == "" || len(a.Rows) < 2 {
			t.Errorf("ablation %s incomplete", a.ID)
		}
		seen[a.ID] = true
	}
	for _, id := range []string{"X1", "X2", "X3", "X4", "X5"} {
		if !seen[id] {
			t.Errorf("missing ablation %s", id)
		}
	}
	if _, ok := res[0].Row("nope"); ok {
		t.Error("Row on missing name should be false")
	}
}

func TestWindowStudy(t *testing.T) {
	rows, err := WindowStudy(DefaultParams(), []vclock.Duration{30, 120, 480})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Name != "s3" {
		t.Fatalf("rows = %+v", rows)
	}
	s3 := rows[0]
	for _, r := range rows[1:] {
		// No window setting recovers S^3's ART.
		if r.ART <= s3.ART {
			t.Errorf("%s ART %v should exceed S3 %v", r.Name, r.ART, s3.ART)
		}
	}
	if _, err := WindowStudy(DefaultParams(), nil); err == nil {
		t.Error("empty window list should fail")
	}
}

func TestDistributedScanSavings(t *testing.T) {
	res, err := DistributedScanSavings(DefaultDistributedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputAgree {
		t.Error("S3 and FIFO outputs differ on the distributed substrate")
	}
	// All jobs arrive together: S3 shares one pass, FIFO scans per job.
	if res.S3Reads != int64(res.Blocks) {
		t.Errorf("S3 cluster reads = %d, want %d", res.S3Reads, res.Blocks)
	}
	if res.FIFOReads != int64(res.Blocks*res.Jobs) {
		t.Errorf("FIFO cluster reads = %d, want %d", res.FIFOReads, res.Blocks*res.Jobs)
	}
	if _, err := DistributedScanSavings(DistributedConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestJitterStudyS3Robust(t *testing.T) {
	res, err := JitterStudy(DefaultParams(), 20, 0.15, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("summaries = %+v", res)
	}
	for _, s := range res {
		// S^3 keeps a mean advantage on ART across +-15% arrival
		// perturbation — its win is not a calibration knife-edge.
		if s.MeanART <= 1.0 {
			t.Errorf("%s mean ART ratio = %.3f, want > 1 (S3 advantage)", s.Scheme, s.MeanART)
		}
		// And S^3 wins ART in the large majority of trials.
		if s.S3WinsART*10 < s.Trials*8 {
			t.Errorf("%s: S3 won ART in only %d/%d trials", s.Scheme, s.S3WinsART, s.Trials)
		}
		if s.MinTET > s.MaxTET || s.MinART > s.MaxART {
			t.Errorf("%s: inconsistent min/max %+v", s.Scheme, s)
		}
	}
	if _, err := JitterStudy(DefaultParams(), 0, 0.1, 1); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := JitterStudy(DefaultParams(), 1, 1.5, 1); err == nil {
		t.Error("spread >= 1 should fail")
	}
}

func TestPoissonStudyQueueingShape(t *testing.T) {
	points, err := PoissonStudy(DefaultParams(), []float64{0.3, 0.8, 1.5}, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// FIFO's ART penalty grows with offered load; S3's stays bounded.
	for i := 1; i < len(points); i++ {
		if points[i].ARTRatio <= points[i-1].ARTRatio*0.9 {
			t.Errorf("ART ratio should grow with load: %.2f -> %.2f at rho %.1f",
				points[i-1].ARTRatio, points[i].ARTRatio, points[i].Rho)
		}
	}
	// At overload (rho > 1) FIFO must be far worse.
	last := points[len(points)-1]
	if last.ARTRatio < 1.5 {
		t.Errorf("at rho=%.1f FIFO/S3 ART = %.2f, want >= 1.5", last.Rho, last.ARTRatio)
	}
	// At light load both schemes approach one job time.
	first := points[0]
	if first.ARTRatio > 1.6 {
		t.Errorf("at rho=%.1f FIFO/S3 ART = %.2f, want mild", first.Rho, first.ARTRatio)
	}
	if _, err := PoissonStudy(DefaultParams(), nil, 5, 1); err == nil {
		t.Error("no load points should fail")
	}
	if _, err := PoissonStudy(DefaultParams(), []float64{-1}, 5, 1); err == nil {
		t.Error("negative rho should fail")
	}
}

func TestEstimatorStudyAccurate(t *testing.T) {
	res, err := EstimatorStudy(DefaultParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedJobs == 0 {
		t.Fatal("nothing predicted")
	}
	// The model is linear in exactly the simulator's cost terms for a
	// fixed block count, but future arrivals the estimator cannot see
	// change batch sizes; predictions should still land within 25% of
	// the jobs' actual lifetimes.
	if res.MAPE > 0.25 {
		t.Errorf("MAPE = %.3f, want <= 0.25", res.MAPE)
	}
	if res.MaxErr > 0.5 {
		t.Errorf("max error = %.3f, want <= 0.5", res.MaxErr)
	}
	if _, err := EstimatorStudy(DefaultParams(), 1); err == nil {
		t.Error("too-early observation point should fail")
	}
	if _, err := EstimatorStudy(DefaultParams(), 100000); err == nil {
		t.Error("observation point past the run should fail")
	}
}

func TestTaxonomyStudy(t *testing.T) {
	rows, err := TaxonomyStudy(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TaxonomyRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	fifo, fair, s3 := byName["fifo"], byName["fair"], byName["s3"]
	// Fair scheduling runs every scan separately, so its TET stays at
	// FIFO's level — §II-B's "this misses sharing opportunities".
	if r := fair.TET.Seconds() / fifo.TET.Seconds(); r < 0.95 || r > 1.05 {
		t.Errorf("fair TET %v should equal FIFO's %v (no sharing either way)", fair.TET, fifo.TET)
	}
	// For identical-length jobs, processor sharing is pessimal for
	// mean response time (everyone finishes late), so fair does NOT
	// beat FIFO on ART here — its §II-B responsiveness case needs
	// heterogeneous job lengths, which the single-shared-file context
	// rules out. The measurement pins that finding.
	if fair.ART <= fifo.ART {
		t.Errorf("fair ART %v unexpectedly beat FIFO %v for identical jobs", fair.ART, fifo.ART)
	}
	// S^3 beats both categories on both metrics.
	if s3.TET >= fair.TET || s3.ART >= fair.ART || s3.TET >= fifo.TET || s3.ART >= fifo.ART {
		t.Errorf("S3 (%v/%v) should beat fair (%v/%v) and FIFO (%v/%v)",
			s3.TET, s3.ART, fair.TET, fair.ART, fifo.TET, fifo.ART)
	}
}

func TestDynamicS3MatchesS3OnHomogeneousCluster(t *testing.T) {
	// With every node healthy, DynamicS3's adaptive segments are
	// exactly the fixed plan's segments, so both schedulers must
	// produce identical metrics at paper scale.
	p := DefaultParams()
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()

	env1, err := NewEnv(WordcountGB, 64, p.Model)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := runVariant("s3", env1, core.New(env1.Plan, nil), metas, times)
	if err != nil {
		t.Fatal(err)
	}

	env2, err := NewEnv(WordcountGB, 64, p.Model)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]dfs.NodeID, Nodes)
	for i := range nodes {
		nodes[i] = dfs.NodeID(i)
	}
	dyn, err := core.NewDynamic(env2.Plan.File(), nodes, SlotsPerNode, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := runVariant("s3-dynamic", env2, dyn, metas, times)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.TET != adaptive.TET || fixed.ART != adaptive.ART {
		t.Errorf("fixed (%v/%v) != dynamic (%v/%v)", fixed.TET, fixed.ART, adaptive.TET, adaptive.ART)
	}
	if fixed.Rounds != adaptive.Rounds {
		t.Errorf("rounds differ: %d vs %d", fixed.Rounds, adaptive.Rounds)
	}
}
