package experiments

import "testing"

func TestPipelineStudy(t *testing.T) {
	res, err := PipelineStudy(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SerialTET <= 0 || row.PipelinedTET <= 0 {
			t.Errorf("%s: degenerate TETs %v / %v", row.Workload, row.SerialTET, row.PipelinedTET)
		}
		// Under the default calibration every workload benefits; the
		// deterministic simulator makes this stable.
		if row.PipelinedTET > row.SerialTET {
			t.Errorf("%s: pipelined TET %v exceeds serial %v", row.Workload, row.PipelinedTET, row.SerialTET)
		}
		if row.Overlap <= 0 {
			t.Errorf("%s: no reduce/scan overlap recorded", row.Workload)
		}
	}
	// The heavy workload (200x reduce output, §V-E) is where reduces
	// are worth hiding: expect a large double-digit gain.
	for _, name := range []string{"heavy-sparse", "heavy-dense"} {
		found := false
		for _, row := range res.Rows {
			if row.Workload == name {
				found = true
				if row.TETGainPct < 20 {
					t.Errorf("%s: TET gain %.1f%%, want >= 20%%", name, row.TETGainPct)
				}
			}
		}
		if !found {
			t.Errorf("workload %s missing", name)
		}
	}
}

func TestPipelineStudyModes(t *testing.T) {
	// Single-mode runs leave the other side's columns zero.
	on, err := PipelineStudyModes(DefaultParams(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range on.Rows {
		if row.SerialTET != 0 || row.PipelinedTET <= 0 || row.TETGainPct != 0 {
			t.Errorf("pipelined-only row malformed: %+v", row)
		}
	}
	off, err := PipelineStudyModes(DefaultParams(), true, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range off.Rows {
		if row.PipelinedTET != 0 || row.SerialTET <= 0 {
			t.Errorf("serial-only row malformed: %+v", row)
		}
	}
	if _, err := PipelineStudyModes(DefaultParams(), false, false); err == nil {
		t.Error("both modes disabled should fail")
	}
}
