package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// WindowStudy goes one step beyond the paper: MRShare's predetermined
// batches assume query patterns known in advance (§II-C criticizes
// exactly this). The natural fix for MRShare when patterns are unknown
// is time-window batching. This study compares S^3 against window
// batchers of several window lengths on the sparse pattern, showing
// that no window choice recovers S^3's response times: short windows
// forfeit sharing, long windows re-create MRShare's waiting.
type WindowStudyRow struct {
	Name   string
	Window vclock.Duration // 0 for the S^3 row
	TET    vclock.Duration
	ART    vclock.Duration
}

// WindowStudy runs S^3 and WindowMRShare at the given window lengths
// over the sparse normal workload.
func WindowStudy(p Params, windows []vclock.Duration) ([]WindowStudyRow, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiments: WindowStudy needs window lengths")
	}
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()

	var out []WindowStudyRow
	run := func(name string, window vclock.Duration, mk func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error)) error {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return err
		}
		sched, err := mk(env.Plan)
		if err != nil {
			return err
		}
		row, err := runVariant(name, env, sched, metas, times)
		if err != nil {
			return err
		}
		out = append(out, WindowStudyRow{Name: name, Window: window, TET: row.TET, ART: row.ART})
		return nil
	}

	if err := run("s3", 0, func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error) {
		return core.New(plan, nil), nil
	}); err != nil {
		return nil, err
	}
	for _, w := range windows {
		name := fmt.Sprintf("window-%s", w)
		window := w
		if err := run(name, window, func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewWindowMRShare(plan, window, NumJobs, nil)
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
