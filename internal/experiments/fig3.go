package experiments

import (
	"fmt"
	"time"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Figure 3 (§V-C) measures the cost of combined job processing: n
// wordcount jobs submitted together and executed as one merged batch,
// for n = 1..10. The paper reports total execution time, average map
// time and average reduce time, observing a mild increase (+25.5%
// TET at n=10) that is far below the n-fold cost of sequential
// processing.
//
// Here the experiment runs on the real engine over generated text, so
// the overhead of feeding one scan to n mappers is measured, not
// modeled.

// CombinedCost is one Figure 3 data point.
type CombinedCost struct {
	Jobs int
	// Total is the wall time of the merged batch (map + reduce).
	Total time.Duration
	// MapPhase is the wall time of the shared map round.
	MapPhase time.Duration
	// ReducePhase is the wall time of the reduce phases.
	ReducePhase time.Duration
	// BlockReads is physical scans issued — constant in n.
	BlockReads int64
}

// Fig3Config scales the combined-cost experiment.
type Fig3Config struct {
	MaxJobs   int   // paper: 10
	Blocks    int   // paper: 2560 map tasks; scaled default 64
	BlockSize int64 // bytes per block; scaled default 16 KiB
	NumReduce int   // paper: 30; scaled default 4
	Seed      int64
}

// DefaultFig3Config returns a laptop-scale configuration that finishes
// in well under a second per point.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{MaxJobs: 10, Blocks: 64, BlockSize: 16 << 10, NumReduce: 4, Seed: 1}
}

// Fig3 runs the combined-cost sweep and returns one point per batch
// size 1..MaxJobs.
func Fig3(cfg Fig3Config) ([]CombinedCost, error) {
	if cfg.MaxJobs <= 0 || cfg.Blocks <= 0 || cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("experiments: invalid Fig3 config %+v", cfg)
	}
	var out []CombinedCost
	for n := 1; n <= cfg.MaxJobs; n++ {
		point, err := fig3Point(cfg, n)
		if err != nil {
			return nil, err
		}
		out = append(out, point)
	}
	return out, nil
}

// Fig3Single runs one combined batch of exactly n jobs (one Figure 3
// data point).
func Fig3Single(cfg Fig3Config, n int) (CombinedCost, error) {
	if n <= 0 || cfg.Blocks <= 0 || cfg.BlockSize <= 0 {
		return CombinedCost{}, fmt.Errorf("experiments: invalid Fig3 point (n=%d, %+v)", n, cfg)
	}
	return fig3Point(cfg, n)
}

// SimCombinedCost is one Figure 3 data point priced by the calibrated
// cost model at full paper scale (2560 blocks, 40 slots). The real
// engine (Fig3) demonstrates the mechanism — constant physical scans,
// growth far below n-fold — but its in-memory "I/O" is much cheaper
// relative to map work than the authors' disks, so its ratios run
// high. The simulator supplies the paper-scale magnitudes.
type SimCombinedCost struct {
	Jobs     int
	Total    vclock.Duration
	MapTime  vclock.Duration // scan + map + task portion
	Reduce   vclock.Duration
	VsSingle float64
}

// Fig3Sim prices merged batches of 1..maxJobs wordcount jobs with the
// cost model (paper: +25.5% total at n=10).
func Fig3Sim(p Params, maxJobs int) ([]SimCombinedCost, error) {
	if maxJobs <= 0 {
		return nil, fmt.Errorf("experiments: Fig3Sim needs positive maxJobs, got %d", maxJobs)
	}
	var out []SimCombinedCost
	var base float64
	for n := 1; n <= maxJobs; n++ {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return nil, err
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, p.Model)
		metas := workload.WordCountMetas(n, "input", 1, 1)
		var total, reduce vclock.Duration
		k := env.Plan.NumSegments()
		for seg := 0; seg < k; seg++ {
			r := scheduler.Round{
				Segment: seg,
				Blocks:  env.Plan.Blocks(seg),
				Jobs:    metas,
			}
			if seg == 0 {
				r.FreshJobs = 1
			}
			if seg == k-1 {
				for _, m := range metas {
					r.Completes = append(r.Completes, m.ID)
				}
			}
			d, err := exec.ExecRound(r)
			if err != nil {
				return nil, err
			}
			total += d
			reduce += vclock.Duration(float64(n) * p.Model.ReducePerRound)
		}
		if n == 1 {
			base = total.Seconds()
		}
		out = append(out, SimCombinedCost{
			Jobs:     n,
			Total:    total,
			MapTime:  total - reduce,
			Reduce:   reduce,
			VsSingle: total.Seconds() / base,
		})
	}
	return out, nil
}

func fig3Point(cfg Fig3Config, n int) (CombinedCost, error) {
	store := dfs.MustStore(Nodes, 1)
	if _, err := workload.AddTextFile(store, "corpus", cfg.Blocks, cfg.BlockSize, cfg.Seed); err != nil {
		return CombinedCost{}, err
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, SlotsPerNode))

	prefixes := workload.DistinctPrefixes(n)
	jobs := make([]*mapreduce.Running, n)
	for i := 0; i < n; i++ {
		spec := workload.WordCountJob(fmt.Sprintf("wc-%d", i), "corpus", prefixes[i], cfg.NumReduce)
		job, err := mapreduce.NewRunning(spec)
		if err != nil {
			return CombinedCost{}, err
		}
		jobs[i] = job
	}
	f, err := store.File("corpus")
	if err != nil {
		return CombinedCost{}, err
	}

	start := time.Now()
	if _, err := engine.MapRound(f.Blocks(), jobs); err != nil {
		return CombinedCost{}, err
	}
	mapDone := time.Now()
	for _, job := range jobs {
		if _, err := engine.Finish(job); err != nil {
			return CombinedCost{}, err
		}
	}
	end := time.Now()

	return CombinedCost{
		Jobs:        n,
		Total:       end.Sub(start),
		MapPhase:    mapDone.Sub(start),
		ReducePhase: end.Sub(mapDone),
		BlockReads:  store.Stats().BlockReads,
	}, nil
}
