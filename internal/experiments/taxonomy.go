package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// TaxonomyStudy reproduces §II-B's scheduler taxonomy as a measurement:
// full-utilization FIFO (jobs block each other), partial-utilization
// fair scheduling (jobs progress concurrently but never share work),
// and S^3 (concurrent progress *with* shared scans). The paper's
// critique of the first two categories becomes three numbers per
// metric.
type TaxonomyRow struct {
	Scheme string
	TET    vclock.Duration
	ART    vclock.Duration
}

// TaxonomyStudy runs all three categories on the sparse normal
// workload.
func TaxonomyStudy(p Params) ([]TaxonomyRow, error) {
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	schemes := []struct {
		name string
		mk   func(plan *dfs.SegmentPlan) scheduler.Scheduler
	}{
		{"fifo", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return scheduler.NewFIFO(plan, nil) }},
		{"fair", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return scheduler.NewFair(plan, nil) }},
		{"s3", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return core.New(plan, nil) }},
	}
	var out []TaxonomyRow
	for _, s := range schemes {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return nil, err
		}
		row, err := runVariant(s.name, env, s.mk(env.Plan), metas, times)
		if err != nil {
			return nil, fmt.Errorf("taxonomy %s: %w", s.name, err)
		}
		out = append(out, TaxonomyRow{Scheme: s.name, TET: row.TET, ART: row.ART})
	}
	return out, nil
}
