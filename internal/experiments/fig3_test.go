package experiments

import "testing"

func TestFig3Shape(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.MaxJobs = 6 // keep the unit-test run short; the bench sweeps 10
	points, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	for i, p := range points {
		if p.Jobs != i+1 {
			t.Errorf("point %d jobs = %d", i, p.Jobs)
		}
		if p.Total <= 0 || p.MapPhase <= 0 {
			t.Errorf("point %d has non-positive timings: %+v", i, p)
		}
		// The shared scan means block reads stay constant in n.
		if p.BlockReads != int64(cfg.Blocks) {
			t.Errorf("point %d block reads = %d, want %d (one scan regardless of batch size)",
				i, p.BlockReads, cfg.Blocks)
		}
	}
	// Combining n jobs costs more than one job but far less than n
	// sequential jobs (paper: +25.5% at n=10 — wall-time ratios here
	// are noisy, so only the gross shape is asserted).
	first, last := points[0].Total, points[len(points)-1].Total
	if last < first {
		t.Logf("warning: combined cost decreased (%v -> %v); timer noise", first, last)
	}
	if last > 6*first {
		t.Errorf("combining 6 jobs cost %v vs %v for one — worse than sequential", last, first)
	}
}

func TestFig3Validation(t *testing.T) {
	if _, err := Fig3(Fig3Config{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestTable1Profile(t *testing.T) {
	res, err := Table1(DefaultTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.InputBytes != 64*64<<10 {
		t.Errorf("input bytes = %d", res.InputBytes)
	}
	if res.MapTasks != 64 {
		t.Errorf("map tasks = %d, want 64", res.MapTasks)
	}
	if res.MapInputRecords == 0 || res.MapOutputRecords == 0 {
		t.Error("record counters empty")
	}
	// Pattern counting: output records are a subset of input words.
	if res.MapOutputRecords >= res.MapInputRecords {
		t.Errorf("map output %d should be below input %d (pattern filter)", res.MapOutputRecords, res.MapInputRecords)
	}
	// Reduce output is distinct matched words — small, like the
	// paper's 60-80 thousand vs 250 million map records.
	if res.ReduceOutRecords >= res.MapOutputRecords/10 {
		t.Errorf("reduce output %d not sharply smaller than map output %d", res.ReduceOutRecords, res.MapOutputRecords)
	}
	if res.ScaleToPaper <= 0 || res.ProjMapOutRecords <= res.MapOutputRecords {
		t.Errorf("projection wrong: %+v", res)
	}
}

func TestTable1Validation(t *testing.T) {
	if _, err := Table1(Table1Config{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestFig3SimMatchesPaperRatio(t *testing.T) {
	points, err := Fig3Sim(DefaultParams(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	// Monotone non-decreasing total cost in batch size.
	for i := 1; i < len(points); i++ {
		if points[i].Total < points[i-1].Total {
			t.Errorf("combined cost decreased at n=%d", points[i].Jobs)
		}
	}
	// Paper: merging 10 jobs costs +25.5%. Accept [1.15, 1.40].
	r := points[9].VsSingle
	if r < 1.15 || r > 1.40 {
		t.Errorf("n=10 cost ratio = %.3f, want ~1.255 (paper Fig. 3)", r)
	}
	if _, err := Fig3Sim(DefaultParams(), 0); err == nil {
		t.Error("zero maxJobs should fail")
	}
}
