package experiments

import (
	"fmt"

	"s3sched/internal/driver"
	"s3sched/internal/faults"
	"s3sched/internal/metrics"
	"s3sched/internal/sim"
	"s3sched/internal/workload"
)

// FaultSchemeResult is one scheme's outcome at one fault rate.
type FaultSchemeResult struct {
	Summary   metrics.Summary
	Rounds    int
	Completed int
	Failed    int
	Faults    metrics.FaultStats
}

// FaultPoint is one fault rate evaluated across the schemes.
type FaultPoint struct {
	Rate    float64
	Schemes map[string]FaultSchemeResult
}

// FaultStudyResult is the degradation study: TET/ART of S^3 vs FIFO vs
// MRShare as the transient block-failure rate rises, with two node
// crash windows overlapped on every non-zero rate.
type FaultStudyResult struct {
	Seed     int64
	Replicas int
	Rates    []float64
	Points   []FaultPoint
}

// faultSchemes is the comparison set of the fault study: the full
// MRShare spread adds nothing here, one batching variant does.
func faultSchemes() []SchemeSpec {
	all := PaperSchemes()
	out := make([]SchemeSpec, 0, 3)
	for _, s := range all {
		if s.Name == "s3" || s.Name == "fifo" || s.Name == "mrs1" {
			out = append(out, s)
		}
	}
	return out
}

// faultCrashes is the fixed crash schedule overlaid on every non-zero
// fault rate: one node fails mid-run and another later, each
// recovering after a while. With replicas >= 2 every block keeps a
// surviving holder, so the schedulers must finish all jobs — paying
// shrunken waves and lost locality while a node is out.
func faultCrashes() []faults.Crash {
	return []faults.Crash{
		{Node: 0, From: 300, To: 450},
		{Node: 7, From: 700, To: 800},
	}
}

// FaultStudy measures fault-tolerance degradation at rates
// {0, maxRate/4, maxRate/2, maxRate} under seed. The environment is the
// paper-scale normal workload (160 GB, 64 MB blocks, sparse pattern)
// with 2-way replication. The schedule is deterministic: equal
// (maxRate, seed) reproduce identical fault histories and results.
func FaultStudy(maxRate float64, seed int64) (FaultStudyResult, error) {
	if maxRate < 0 || maxRate >= 1 {
		return FaultStudyResult{}, fmt.Errorf("experiments: fault rate %v outside [0,1)", maxRate)
	}
	const replicas = 2
	p := DefaultParams()
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}

	out := FaultStudyResult{
		Seed:     seed,
		Replicas: replicas,
		Rates:    []float64{0, maxRate / 4, maxRate / 2, maxRate},
	}
	for _, rate := range out.Rates {
		point := FaultPoint{Rate: rate, Schemes: make(map[string]FaultSchemeResult)}
		for _, spec := range faultSchemes() {
			// Fresh environment per run: the store's replica placement
			// is part of the deterministic schedule.
			env, err := NewEnvReplicated(WordcountGB, 64, replicas, p.Model)
			if err != nil {
				return FaultStudyResult{}, err
			}
			sched, err := spec.Make(env.Plan)
			if err != nil {
				return FaultStudyResult{}, fmt.Errorf("experiments: building %s: %w", spec.Name, err)
			}
			exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
			if rate > 0 {
				fm := sim.FaultModel{
					Seed:          seed,
					BlockFailRate: rate,
					MaxAttempts:   4,
					RetrySec:      5,
					Crashes:       faultCrashes(),
				}
				if err := exec.SetFaultModel(fm); err != nil {
					return FaultStudyResult{}, err
				}
			}
			res, err := driver.Run(sched, exec, arrivals)
			if err != nil {
				return FaultStudyResult{}, fmt.Errorf("experiments: running %s at rate %v: %w", spec.Name, rate, err)
			}
			sum, err := res.Metrics.Summarize(spec.Name)
			if err != nil {
				return FaultStudyResult{}, fmt.Errorf("experiments: summarizing %s at rate %v: %w", spec.Name, rate, err)
			}
			point.Schemes[spec.Name] = FaultSchemeResult{
				Summary:   sum,
				Rounds:    res.Rounds,
				Completed: res.Metrics.Jobs() - len(res.Metrics.Failed()) - len(res.Metrics.Incomplete()),
				Failed:    len(res.Metrics.Failed()),
				Faults:    res.Metrics.FaultStats(),
			}
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}
