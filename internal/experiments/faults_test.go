package experiments

import (
	"encoding/json"
	"testing"
)

// TestFaultStudyDeterministic: equal (maxRate, seed) must reproduce
// the entire study bit-for-bit — fault schedules, retries, TET/ART.
func TestFaultStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault study in -short mode")
	}
	r1, err := FaultStudy(0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FaultStudy(0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Error("two FaultStudy runs with equal inputs diverged")
	}
}

// TestFaultStudySurvivesWithReplicas: the acceptance criterion — with
// 2-way replication and the fixed single-node crash windows, every
// scheme finishes every job at every fault rate, and faults degrade
// but do not invert the paper's S^3 < FIFO ordering.
func TestFaultStudySurvivesWithReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault study in -short mode")
	}
	res, err := FaultStudy(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 || res.Points[0].Rate != 0 {
		t.Fatalf("points = %d (first rate %v), want 4 starting at 0", len(res.Points), res.Points[0].Rate)
	}
	for _, p := range res.Points {
		for name, sr := range p.Schemes {
			if sr.Completed != NumJobs || sr.Failed != 0 {
				t.Errorf("rate %v %s: completed %d failed %d, want %d/0",
					p.Rate, name, sr.Completed, sr.Failed, NumJobs)
			}
		}
		s3 := p.Schemes["s3"]
		fifo := p.Schemes["fifo"]
		if s3.Summary.TET >= fifo.Summary.TET {
			t.Errorf("rate %v: S3 TET %v >= FIFO TET %v", p.Rate, s3.Summary.TET, fifo.Summary.TET)
		}
	}
	// Non-zero rates must actually exercise the retry machinery.
	last := res.Points[len(res.Points)-1]
	if last.Schemes["s3"].Faults.Retries == 0 {
		t.Error("max-rate point recorded zero retries; injection is not wired")
	}
	// Degradation is monotone in expectation at paper scale: the
	// max-rate TET exceeds the fault-free TET for every scheme.
	for name := range last.Schemes {
		if last.Schemes[name].Summary.TET <= res.Points[0].Schemes[name].Summary.TET {
			t.Errorf("%s TET did not degrade under faults: %v <= %v",
				name, last.Schemes[name].Summary.TET, res.Points[0].Schemes[name].Summary.TET)
		}
	}
}

func TestFaultStudyRejectsBadRate(t *testing.T) {
	if _, err := FaultStudy(1, 42); err == nil {
		t.Error("rate 1 accepted, want error")
	}
	if _, err := FaultStudy(-0.1, 42); err == nil {
		t.Error("negative rate accepted, want error")
	}
}
