package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Robustness study: the pinned Figure 4 results come from one exact
// arrival sequence. JitterStudy perturbs every arrival time by a
// seeded uniform factor and re-runs the sparse normal-workload panel
// many times, reporting the distribution of FIFO/S^3 and MRShare/S^3
// ratios. If S^3's advantage held only at the calibrated knife-edge,
// it would vanish here.

// JitterSummary aggregates one scheme's ratio-to-S^3 across trials.
type JitterSummary struct {
	Scheme  string
	Trials  int
	MeanTET float64
	MinTET  float64
	MaxTET  float64
	MeanART float64
	MinART  float64
	MaxART  float64
	// S3WinsTET/ART count trials where S^3 strictly won the metric.
	S3WinsTET int
	S3WinsART int
}

// JitterStudy runs `trials` perturbed sparse panels. Each arrival time
// is scaled by a uniform factor in [1-spread, 1+spread] drawn from the
// seeded generator, so results are reproducible.
func JitterStudy(p Params, trials int, spread float64, seed int64) ([]JitterSummary, error) {
	if trials <= 0 || spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("experiments: invalid jitter study (trials=%d spread=%v)", trials, spread)
	}
	rng := rand.New(rand.NewSource(seed))
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	base := p.SparsePattern()

	type agg struct {
		tets, arts       []float64
		winsTET, winsART int
	}
	schemes := []struct {
		name string
		mk   func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error)
	}{
		{"fifo", func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewFIFO(plan, nil), nil
		}},
		{"mrs3", func(plan *dfs.SegmentPlan) (scheduler.Scheduler, error) {
			return scheduler.NewMRShare(plan, []int{3, 3, 4}, nil)
		}},
	}
	aggs := map[string]*agg{}
	for _, s := range schemes {
		aggs[s.name] = &agg{}
	}

	for trial := 0; trial < trials; trial++ {
		times := make([]vclock.Time, len(base))
		for i, t := range base {
			factor := 1 + spread*(2*rng.Float64()-1)
			times[i] = vclock.Time(float64(t) * factor)
		}
		// S^3 baseline for this perturbed pattern.
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return nil, err
		}
		s3Row, err := runVariant("s3", env, core.New(env.Plan, nil), metas, times)
		if err != nil {
			return nil, fmt.Errorf("jitter trial %d: %w", trial, err)
		}
		for _, s := range schemes {
			env, err := NewEnv(WordcountGB, 64, p.Model)
			if err != nil {
				return nil, err
			}
			sched, err := s.mk(env.Plan)
			if err != nil {
				return nil, err
			}
			row, err := runVariant(s.name, env, sched, metas, times)
			if err != nil {
				return nil, fmt.Errorf("jitter trial %d (%s): %w", trial, s.name, err)
			}
			a := aggs[s.name]
			a.tets = append(a.tets, row.TET.Seconds()/s3Row.TET.Seconds())
			a.arts = append(a.arts, row.ART.Seconds()/s3Row.ART.Seconds())
			if row.TET > s3Row.TET {
				a.winsTET++
			}
			if row.ART > s3Row.ART {
				a.winsART++
			}
		}
	}

	var out []JitterSummary
	for _, s := range schemes {
		a := aggs[s.name]
		out = append(out, JitterSummary{
			Scheme:  s.name,
			Trials:  trials,
			MeanTET: mean(a.tets), MinTET: minOf(a.tets), MaxTET: maxOf(a.tets),
			MeanART: mean(a.arts), MinART: minOf(a.arts), MaxART: maxOf(a.arts),
			S3WinsTET: a.winsTET, S3WinsART: a.winsART,
		})
	}
	return out, nil
}

func mean(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
