package experiments

import "testing"

func TestCacheStudy(t *testing.T) {
	res, err := CacheStudy([]int{0, 4096}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	off, on := res.Points[0], res.Points[1]
	if off.CachedBlocks != 0 || off.HitRatio != 0 {
		t.Fatalf("baseline point shows cache activity: %+v", off)
	}
	if on.CachedBlocks == 0 {
		t.Fatal("4 GB/node point served nothing warm on the repeated-arrival workload")
	}
	// The acceptance bar: caching never makes the repeated-arrival
	// workload slower.
	if on.Summary.TET > off.Summary.TET {
		t.Fatalf("cache-on TET %v > cache-off TET %v", on.Summary.TET, off.Summary.TET)
	}
	if !res.Engine.OutputsIdentical {
		t.Fatal("engine outputs diverged between cache-off and cache-on runs")
	}
	if res.Engine.CacheHits == 0 {
		t.Fatal("engine check recorded no cache hits")
	}
	if res.Engine.WarmReads > res.Engine.ColdReads {
		t.Fatalf("cache increased physical reads: %d > %d", res.Engine.WarmReads, res.Engine.ColdReads)
	}
}

func TestCacheStudyDeterministic(t *testing.T) {
	a, err := CacheStudy([]int{4096}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CacheStudy([]int{4096}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Points[0], b.Points[0]
	if pa.Summary.TET != pb.Summary.TET || pa.CachedBlocks != pb.CachedBlocks || pa.HitRatio != pb.HitRatio {
		t.Fatalf("cache study is nondeterministic: %+v vs %+v", pa, pb)
	}
}

func TestCacheStudyRejectsBadInput(t *testing.T) {
	if _, err := CacheStudy([]int{-1}, 0.1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := CacheStudy([]int{64}, 1.5); err == nil {
		t.Fatal("fraction above 1 accepted")
	}
}
