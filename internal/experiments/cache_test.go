package experiments

import (
	"testing"

	"s3sched/internal/dfs"
)

// TestCacheStudy runs the full policy×budget sweep at the budgets the
// bench baseline gates on: 0 (off), 2048 (undersized — LRU's cliff) and
// 4096 (a node's whole share). It asserts the ISSUE acceptance shape:
// scan-resistant policies keep hits above zero on the undersized point,
// policies are ordered cursor ≥ 2q ≥ lru at every budget, the cursor
// policy strictly beats LRU's TET at 2 GB/node, and every policy's
// engine check is byte-identical.
func TestCacheStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	res, err := CacheStudy([]int{0, 2048, 4096}, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 baseline + 3 policies × 2 budgets.
	if len(res.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(res.Points))
	}
	pts := make(map[string]map[int]CachePoint)
	for _, pt := range res.Points {
		if pts[pt.Policy] == nil {
			pts[pt.Policy] = make(map[int]CachePoint)
		}
		pts[pt.Policy][pt.CacheMB] = pt
	}
	off := pts[""][0]
	if off.CachedBlocks != 0 || off.HitRatio != 0 {
		t.Fatalf("baseline point shows cache activity: %+v", off)
	}
	for _, budget := range []int{2048, 4096} {
		lru, twoQ, cursor := pts[dfs.PolicyLRU][budget], pts[dfs.Policy2Q][budget], pts[dfs.PolicyCursor][budget]
		if cursor.HitRatio < twoQ.HitRatio || twoQ.HitRatio < lru.HitRatio {
			t.Fatalf("policy ordering violated at %d MB: cursor %.3f, 2q %.3f, lru %.3f",
				budget, cursor.HitRatio, twoQ.HitRatio, lru.HitRatio)
		}
		// Scan resistance: the undersized budget must not zero out the
		// scan-resistant policies the way it zeroes LRU.
		if twoQ.HitRatio <= 0 || cursor.HitRatio <= 0 {
			t.Fatalf("scan-resistant policy lost all hits at %d MB: 2q %.3f, cursor %.3f",
				budget, twoQ.HitRatio, cursor.HitRatio)
		}
		// Caching never slows the repeated-arrival workload down.
		for _, pt := range []CachePoint{lru, twoQ, cursor} {
			if pt.Summary.TET > off.Summary.TET {
				t.Fatalf("%s at %d MB: cache-on TET %v > cache-off TET %v",
					pt.Policy, budget, pt.Summary.TET, off.Summary.TET)
			}
		}
	}
	// The headline claim: at the 2 GB/node cliff the cursor policy is
	// strictly faster than LRU, and it got there via readahead.
	lru2, cur2 := pts[dfs.PolicyLRU][2048], pts[dfs.PolicyCursor][2048]
	if cur2.Summary.TET >= lru2.Summary.TET {
		t.Fatalf("cursor TET %v not strictly better than lru TET %v at 2048 MB",
			cur2.Summary.TET, lru2.Summary.TET)
	}
	if cur2.Prefetches == 0 {
		t.Fatal("cursor policy issued no prefetches")
	}
	if len(res.Engine) != len(dfs.Policies()) {
		t.Fatalf("engine checks = %d, want one per policy", len(res.Engine))
	}
	for _, eng := range res.Engine {
		if !eng.OutputsIdentical {
			t.Fatalf("%s: engine outputs diverged between cache-off and cache-on runs", eng.Policy)
		}
		if eng.CacheHits == 0 {
			t.Fatalf("%s: engine check recorded no cache hits", eng.Policy)
		}
		if eng.WarmReads > eng.ColdReads {
			t.Fatalf("%s: cache increased physical reads: %d > %d", eng.Policy, eng.WarmReads, eng.ColdReads)
		}
		if eng.Policy == dfs.PolicyCursor && eng.Prefetches == 0 {
			t.Fatal("cursor engine check issued no prefetches")
		}
	}
}

func TestCacheStudyDeterministic(t *testing.T) {
	a, err := CacheStudy([]int{4096}, 0.1, []string{dfs.PolicyCursor})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CacheStudy([]int{4096}, 0.1, []string{dfs.PolicyCursor})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Points[0], b.Points[0]
	if pa.Summary.TET != pb.Summary.TET || pa.CachedBlocks != pb.CachedBlocks ||
		pa.HitRatio != pb.HitRatio || pa.Prefetches != pb.Prefetches {
		t.Fatalf("cache study is nondeterministic: %+v vs %+v", pa, pb)
	}
}

func TestCacheStudyRejectsBadInput(t *testing.T) {
	if _, err := CacheStudy([]int{-1}, 0.1, nil); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := CacheStudy([]int{64}, 1.5, nil); err == nil {
		t.Fatal("fraction above 1 accepted")
	}
	if _, err := CacheStudy([]int{64}, 0.1, []string{"clock"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
