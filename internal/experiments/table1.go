package experiments

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/workload"
)

// Table I (§V-B) profiles the normal wordcount workload: input size,
// map output records/size, reduce output records/size, and average
// processing time. This experiment runs one pattern-counting wordcount
// job on the real engine over generated text at a configurable scale
// and reports both the measured values and their linear projection to
// the paper's 160 GB input.

// Table1Config scales the workload-profile experiment.
type Table1Config struct {
	Blocks    int
	BlockSize int64
	NumReduce int
	Prefix    string
	Seed      int64
	// VocabSize sets the synthetic vocabulary (0 = the small built-in
	// demo list). Natural text has tens of thousands of distinct
	// words, which is what shapes Table I's reduce output.
	VocabSize int
}

// DefaultTable1Config returns a laptop-scale configuration (4 MiB of
// text over a 50k-word vocabulary, like natural English).
func DefaultTable1Config() Table1Config {
	return Table1Config{Blocks: 64, BlockSize: 64 << 10, NumReduce: 4, Prefix: "t", Seed: 1, VocabSize: 50000}
}

// Table1Result carries the measured profile and its projection.
type Table1Result struct {
	InputBytes        int64
	MapInputRecords   int64
	MapOutputRecords  int64
	MapOutputBytes    int64
	ReduceOutRecords  int64
	ReduceOutBytes    int64
	MapTasks          int64
	ReduceTasks       int64
	ScaleToPaper      float64 // 160 GB / measured input
	ProjMapOutRecords int64   // map output records at paper scale
	ProjRedOutBytes   int64   // reduce output bytes at paper scale
}

// Table1 runs the profile experiment.
func Table1(cfg Table1Config) (Table1Result, error) {
	if cfg.Blocks <= 0 || cfg.BlockSize <= 0 {
		return Table1Result{}, fmt.Errorf("experiments: invalid Table1 config %+v", cfg)
	}
	store := dfs.MustStore(Nodes, 1)
	var err error
	if cfg.VocabSize > 0 {
		_, err = workload.AddTextFileVocab(store, "corpus", cfg.Blocks, cfg.BlockSize, cfg.Seed, cfg.VocabSize)
	} else {
		_, err = workload.AddTextFile(store, "corpus", cfg.Blocks, cfg.BlockSize, cfg.Seed)
	}
	if err != nil {
		return Table1Result{}, err
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, SlotsPerNode))
	res, err := engine.RunJob(workload.WordCountJob("table1", "corpus", cfg.Prefix, cfg.NumReduce))
	if err != nil {
		return Table1Result{}, err
	}
	c := res.Counters
	inputBytes := c.Get(mapreduce.CounterMapInputBytes)
	scale := float64(int64(WordcountGB)<<30) / float64(inputBytes)
	out := Table1Result{
		InputBytes:       inputBytes,
		MapInputRecords:  c.Get(mapreduce.CounterMapInputRecords),
		MapOutputRecords: c.Get(mapreduce.CounterMapOutputRecords),
		MapOutputBytes:   c.Get(mapreduce.CounterMapOutputBytes),
		ReduceOutRecords: c.Get(mapreduce.CounterReduceOutRecords),
		ReduceOutBytes:   c.Get(mapreduce.CounterReduceOutBytes),
		MapTasks:         c.Get(mapreduce.CounterMapTasks),
		ReduceTasks:      c.Get(mapreduce.CounterReduceTasks),
		ScaleToPaper:     scale,
	}
	out.ProjMapOutRecords = int64(float64(out.MapOutputRecords) * scale)
	// Reduce output (distinct words) does not scale linearly with
	// input; project bytes conservatively as-is times a log-ish
	// factor is out of scope — report the measured value scaled by 1
	// (distinct vocabulary is fixed in the generator).
	out.ProjRedOutBytes = out.ReduceOutBytes
	return out, nil
}
