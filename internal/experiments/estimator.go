package experiments

import (
	"fmt"
	"math"

	"s3sched/internal/core"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// EstimatorStudy validates §IV-D1's completion-time estimation: an
// online Estimator observes every completed round of a sparse-pattern
// S^3 run; at a chosen observation point it predicts the completion
// time of every active job, and after the run the predictions are
// scored against the actual completions.

// EstimatorResult reports prediction accuracy.
type EstimatorResult struct {
	ObservedRounds int
	PredictedJobs  int
	// MAPE is the mean absolute percentage error of the predicted
	// completion times (relative to the remaining time to completion).
	MAPE float64
	// MaxErr is the worst absolute percentage error.
	MaxErr float64
}

// EstimatorStudy runs the study: predictions are made right after
// round observeAt completes.
func EstimatorStudy(p Params, observeAt int) (EstimatorResult, error) {
	if observeAt < 3 {
		return EstimatorResult{}, fmt.Errorf("experiments: need at least 3 observed rounds, got %d", observeAt)
	}
	env, err := NewEnv(WordcountGB, 64, p.Model)
	if err != nil {
		return EstimatorResult{}, err
	}
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}

	s3 := core.New(env.Plan, nil)
	est := core.NewEstimator()
	exec := newSimExec(env)

	var (
		roundStart vclock.Time
		rounds     int
		predicted  map[scheduler.JobID]vclock.Time // absolute predicted completion
		predErr    error
	)
	hooks := driver.Hooks{
		OnRoundStart: func(r scheduler.Round, now vclock.Time) { roundStart = now },
		OnRoundDone: func(r scheduler.Round, now vclock.Time, completed []scheduler.JobID) {
			rounds++
			est.Observe(len(r.Jobs), len(r.Blocks), now.Sub(roundStart))
			if rounds == observeAt && predErr == nil && predicted == nil {
				deltas, err := est.PredictCompletions(s3)
				if err != nil {
					predErr = err
					return
				}
				predicted = make(map[scheduler.JobID]vclock.Time, len(deltas))
				for id, d := range deltas {
					predicted[id] = now.Add(d)
				}
			}
		},
	}
	res, err := driver.RunWithHooks(s3, exec, arrivals, hooks)
	if err != nil {
		return EstimatorResult{}, err
	}
	if predErr != nil {
		return EstimatorResult{}, predErr
	}
	if predicted == nil {
		return EstimatorResult{}, fmt.Errorf("experiments: run finished before round %d; nothing predicted", observeAt)
	}

	table, err := res.Metrics.JobTable()
	if err != nil {
		return EstimatorResult{}, err
	}
	actual := make(map[scheduler.JobID]vclock.Time, len(table))
	for _, row := range table {
		actual[row.ID] = row.CompletedAt
	}

	out := EstimatorResult{ObservedRounds: observeAt, PredictedJobs: len(predicted)}
	var sum float64
	for id, pred := range predicted {
		act, ok := actual[id]
		if !ok {
			return EstimatorResult{}, fmt.Errorf("experiments: predicted job %d never completed", id)
		}
		// Score relative to the job's total lifetime so early
		// predictions of long jobs are judged fairly.
		denom := float64(act)
		if denom <= 0 {
			denom = 1
		}
		e := math.Abs(float64(pred)-float64(act)) / denom
		sum += e
		if e > out.MaxErr {
			out.MaxErr = e
		}
	}
	out.MAPE = sum / float64(len(predicted))
	return out, nil
}

// newSimExec builds the calibrated executor for env.
func newSimExec(env *Env) driver.Executor {
	return sim.NewExecutor(env.Cluster, env.Store, env.Model)
}
