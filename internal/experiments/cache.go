package experiments

import (
	"fmt"
	"sort"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Cache study: how much of the repeated-arrival penalty a node-local
// block cache recovers, and how much of that recovery depends on the
// eviction policy. The workload is the paper's sparse pattern — three
// waves of wordcount jobs over the same 160 GB input — under S^3: each
// wave's jobs join mid-scan and wrap around the file, so the run makes
// several full passes and re-scans every block it already paid for.
//
// The sweep deliberately includes an undersized point: LRU under a
// circular scan has a cliff, not a slope. When a node's warm set is
// smaller than its share of the scan cycle, every block is evicted just
// before the cursor returns to it, so hits stay near zero until the
// budget covers the whole cycle (the classic sequential-flooding
// pathology). The scan-resistant policies attack the cliff from two
// sides: 2Q keeps a protected queue that one-pass flooding cannot
// flush, and the cursor policy pins exactly the segments the JQM's
// circular cursor will scan next — and prefetches them — so its hit
// ratio is set by the scheduler's lookahead, not the budget.

// CachePoint is one (policy, cache size) cell of the sim sweep. The
// budget-0 baseline runs once with Policy empty — with caching off
// there is no policy to pick.
type CachePoint struct {
	Policy       string // eviction policy; "" on the cache-off baseline
	CacheMB      int    // per-node budget in MB; 0 = caching off
	Summary      metrics.Summary
	Rounds       int
	CachedBlocks int64 // reads served warm across the run
	HitRatio     float64
	Evictions    int64
	Prefetches   int64 // readahead issued (cursor policy only)
}

// CacheEngineCheck is the real-engine transparency check for one
// policy: the same staggered wordcount workload run cache-off and
// cache-on must produce byte-identical outputs, with the cache-on run
// doing no more disk work.
type CacheEngineCheck struct {
	Policy           string
	Jobs             int
	OutputsIdentical bool
	CacheHits        int64
	Prefetches       int64
	ColdReads        int64 // physical block reads with caching off
	WarmReads        int64 // physical block reads with caching on
}

// CacheStudyResult is the full study: the sim policy×budget sweep plus
// one engine transparency check per policy.
type CacheStudyResult struct {
	Frac     float64  // cached scan cost as a fraction of disk cost
	Policies []string // policies swept, in output order
	Points   []CachePoint
	Engine   []CacheEngineCheck
}

// CacheStudy sweeps per-node cache budgets (MB; include 0 for the
// baseline) crossed with eviction policies (nil = all of
// dfs.Policies()) over the sparse repeated-arrival workload, pricing
// warm reads at frac of the disk scan cost, then runs the real-engine
// byte-identity check once per policy. Every cached cell runs the
// policy-twin simulator cache wired to the S^3 scheduler's scan hints,
// so the cursor policy's pinning and readahead are exercised exactly as
// the engine would see them.
func CacheStudy(perNodeMBs []int, frac float64, policies []string) (CacheStudyResult, error) {
	if len(policies) == 0 {
		policies = dfs.Policies()
	}
	for _, pol := range policies {
		if !dfs.ValidPolicy(pol) {
			return CacheStudyResult{}, fmt.Errorf("experiments: unknown cache policy %q", pol)
		}
	}
	if frac < 0 || frac > 1 {
		return CacheStudyResult{}, fmt.Errorf("experiments: cached scan fraction %v outside [0,1]", frac)
	}
	for _, mb := range perNodeMBs {
		if mb < 0 {
			return CacheStudyResult{}, fmt.Errorf("experiments: negative cache budget %d MB", mb)
		}
	}

	p := DefaultParams()
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}

	runPoint := func(mb int, policy string) (CachePoint, error) {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return CachePoint{}, err
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
		sched := core.New(env.Plan, nil)
		if mb > 0 {
			if err := exec.EnableCachePolicy(int64(mb)<<20, frac, policy); err != nil {
				return CachePoint{}, err
			}
			sched.SetScanHinter(exec.HandleScanHint)
		}
		res, err := driver.Run(sched, exec, arrivals)
		if err != nil {
			return CachePoint{}, fmt.Errorf("experiments: cache run %s/%d MB: %w", policy, mb, err)
		}
		sum, err := res.Metrics.Summarize(fmt.Sprintf("cache-%s-%dmb", policy, mb))
		if err != nil {
			return CachePoint{}, err
		}
		cs := exec.CacheStats()
		return CachePoint{
			Policy:       policy,
			CacheMB:      mb,
			Summary:      sum,
			Rounds:       res.Rounds,
			CachedBlocks: exec.Stats().CachedBlocks,
			HitRatio:     cs.HitRatio(),
			Evictions:    cs.Evictions,
			Prefetches:   cs.Prefetches,
		}, nil
	}

	out := CacheStudyResult{Frac: frac, Policies: policies}
	for _, mb := range perNodeMBs {
		if mb != 0 {
			continue
		}
		pt, err := runPoint(0, "")
		if err != nil {
			return CacheStudyResult{}, err
		}
		out.Points = append(out.Points, pt)
		break // one baseline regardless of how many zeros were passed
	}
	for _, policy := range policies {
		for _, mb := range perNodeMBs {
			if mb == 0 {
				continue
			}
			pt, err := runPoint(mb, policy)
			if err != nil {
				return CacheStudyResult{}, err
			}
			out.Points = append(out.Points, pt)
		}
		eng, err := cacheEngineCheck(policy)
		if err != nil {
			return CacheStudyResult{}, err
		}
		out.Engine = append(out.Engine, eng)
	}
	return out, nil
}

// cacheEngineCheck runs the same staggered wordcount workload on the
// real engine with and without a store cache under the given policy and
// compares outputs byte for byte. Arrivals are staggered so later jobs
// wrap around the file and re-read blocks earlier jobs already scanned
// — exactly the repeats the cache absorbs. The store is unreplicated
// and the scheduler's hints are wired in, so under the cursor policy
// the check also exercises pinning and readahead on the real read path.
func cacheEngineCheck(policy string) (CacheEngineCheck, error) {
	const (
		nodes     = 8
		blocks    = 32
		blockSize = 4 << 10
		jobs      = 3
		seed      = 11
	)
	run := func(cacheBytes int64) (map[scheduler.JobID]*mapreduce.Result, dfs.Stats, dfs.CacheStats, error) {
		store := dfs.MustStore(nodes, 1)
		if _, err := workload.AddTextFile(store, "corpus", blocks, blockSize, seed); err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		if cacheBytes > 0 {
			if _, err := store.EnableCachePolicy(cacheBytes, policy); err != nil {
				return nil, dfs.Stats{}, dfs.CacheStats{}, err
			}
		}
		f, err := store.File("corpus")
		if err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		plan, err := dfs.PlanSegments(f, nodes)
		if err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
		specs := make(map[scheduler.JobID]mapreduce.JobSpec)
		var arrivals []driver.Arrival
		prefixes := workload.DistinctPrefixes(jobs)
		for i := 0; i < jobs; i++ {
			id := scheduler.JobID(i + 1)
			specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
			arrivals = append(arrivals, driver.Arrival{
				Job: scheduler.JobMeta{ID: id, File: "corpus"},
				At:  vclock.Time(i),
			})
		}
		exec := driver.NewEngineExecutor(engine, specs)
		sched := core.New(plan, nil)
		if cacheBytes > 0 {
			sched.SetScanHinter(store.HandleScanHint)
		}
		if _, err := driver.Run(sched, exec, arrivals); err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		return exec.Results(), store.Stats(), store.CacheStats(), nil
	}

	cold, coldStats, _, err := run(0)
	if err != nil {
		return CacheEngineCheck{}, err
	}
	warm, warmStats, warmCache, err := run(int64(blocks) * blockSize * 2)
	if err != nil {
		return CacheEngineCheck{}, err
	}
	return CacheEngineCheck{
		Policy:           policy,
		Jobs:             jobs,
		OutputsIdentical: resultsIdentical(cold, warm),
		CacheHits:        warmCache.Hits,
		Prefetches:       warmCache.Prefetches,
		ColdReads:        coldStats.BlockReads,
		WarmReads:        warmStats.BlockReads,
	}, nil
}

// resultsIdentical compares two runs' job outputs byte for byte.
func resultsIdentical(a, b map[scheduler.JobID]*mapreduce.Result) bool {
	if len(a) != len(b) {
		return false
	}
	ids := make([]scheduler.JobID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ra, rb := a[id], b[id]
		if rb == nil || ra.Name != rb.Name || len(ra.Output) != len(rb.Output) {
			return false
		}
		for i := range ra.Output {
			if ra.Output[i] != rb.Output[i] {
				return false
			}
		}
	}
	return true
}
