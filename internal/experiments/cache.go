package experiments

import (
	"fmt"
	"sort"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Cache study: how much of the repeated-arrival penalty a node-local
// block cache recovers. The workload is the paper's sparse pattern —
// three waves of wordcount jobs over the same 160 GB input — under
// S^3: each wave's jobs join mid-scan and wrap around the file, so the
// run makes several full passes and re-scans every block it already
// paid for. With a per-node cache large enough to hold a node's share
// of the input (160 GB / 40 nodes = 4 GB), every pass after the first
// is served from memory.
//
// The sweep deliberately includes an undersized point: LRU under a
// circular scan has a cliff, not a slope. When the warm set is smaller
// than the scan cycle, every block is evicted just before the cursor
// returns to it, so hits stay near zero until the budget covers the
// whole cycle (the classic sequential-flooding pathology).

// CachePoint is one cache size evaluated on the sim workload.
type CachePoint struct {
	CacheMB      int // per-node budget in MB; 0 = caching off
	Summary      metrics.Summary
	Rounds       int
	CachedBlocks int64 // reads served warm across the run
	HitRatio     float64
	Evictions    int64
}

// CacheEngineCheck is the real-engine transparency check: the same
// staggered wordcount workload run cache-off and cache-on must produce
// byte-identical outputs, with the cache-on run doing strictly less
// disk work.
type CacheEngineCheck struct {
	Jobs             int
	OutputsIdentical bool
	CacheHits        int64
	ColdReads        int64 // physical block reads with caching off
	WarmReads        int64 // physical block reads with caching on
}

// CacheStudyResult is the full study: the sim sweep plus the engine
// transparency check.
type CacheStudyResult struct {
	Frac   float64 // cached scan cost as a fraction of disk cost
	Points []CachePoint
	Engine CacheEngineCheck
}

// CacheStudy sweeps per-node cache budgets (MB; include 0 for the
// baseline) over the sparse repeated-arrival workload, pricing warm
// reads at frac of the disk scan cost, then runs the real-engine
// byte-identity check.
func CacheStudy(perNodeMBs []int, frac float64) (CacheStudyResult, error) {
	p := DefaultParams()
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}

	out := CacheStudyResult{Frac: frac}
	for _, mb := range perNodeMBs {
		if mb < 0 {
			return CacheStudyResult{}, fmt.Errorf("experiments: negative cache budget %d MB", mb)
		}
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return CacheStudyResult{}, err
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
		if mb > 0 {
			if err := exec.EnableCache(int64(mb)<<20*Nodes, frac); err != nil {
				return CacheStudyResult{}, err
			}
		}
		res, err := driver.Run(core.New(env.Plan, nil), exec, arrivals)
		if err != nil {
			return CacheStudyResult{}, fmt.Errorf("experiments: cache run at %d MB: %w", mb, err)
		}
		sum, err := res.Metrics.Summarize(fmt.Sprintf("cache-%dmb", mb))
		if err != nil {
			return CacheStudyResult{}, err
		}
		out.Points = append(out.Points, CachePoint{
			CacheMB:      mb,
			Summary:      sum,
			Rounds:       res.Rounds,
			CachedBlocks: exec.Stats().CachedBlocks,
			HitRatio:     exec.CacheStats().HitRatio(),
			Evictions:    exec.CacheStats().Evictions,
		})
	}

	eng, err := cacheEngineCheck()
	if err != nil {
		return CacheStudyResult{}, err
	}
	out.Engine = eng
	return out, nil
}

// cacheEngineCheck runs the same staggered wordcount workload on the
// real engine with and without a store cache and compares outputs
// byte for byte. Arrivals are staggered so later jobs wrap around the
// file and re-read blocks earlier jobs already scanned — exactly the
// repeats the cache absorbs.
func cacheEngineCheck() (CacheEngineCheck, error) {
	const (
		nodes     = 8
		blocks    = 32
		blockSize = 4 << 10
		jobs      = 3
		seed      = 11
	)
	run := func(cacheBytes int64) (map[scheduler.JobID]*mapreduce.Result, dfs.Stats, dfs.CacheStats, error) {
		store := dfs.MustStore(nodes, 1)
		if _, err := workload.AddTextFile(store, "corpus", blocks, blockSize, seed); err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		if cacheBytes > 0 {
			if _, err := store.EnableCache(cacheBytes); err != nil {
				return nil, dfs.Stats{}, dfs.CacheStats{}, err
			}
		}
		f, err := store.File("corpus")
		if err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		plan, err := dfs.PlanSegments(f, nodes)
		if err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
		specs := make(map[scheduler.JobID]mapreduce.JobSpec)
		var arrivals []driver.Arrival
		prefixes := workload.DistinctPrefixes(jobs)
		for i := 0; i < jobs; i++ {
			id := scheduler.JobID(i + 1)
			specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
			arrivals = append(arrivals, driver.Arrival{
				Job: scheduler.JobMeta{ID: id, File: "corpus"},
				At:  vclock.Time(i),
			})
		}
		exec := driver.NewEngineExecutor(engine, specs)
		if _, err := driver.Run(core.New(plan, nil), exec, arrivals); err != nil {
			return nil, dfs.Stats{}, dfs.CacheStats{}, err
		}
		return exec.Results(), store.Stats(), store.CacheStats(), nil
	}

	cold, coldStats, _, err := run(0)
	if err != nil {
		return CacheEngineCheck{}, err
	}
	warm, warmStats, warmCache, err := run(int64(blocks) * blockSize * 2)
	if err != nil {
		return CacheEngineCheck{}, err
	}
	return CacheEngineCheck{
		Jobs:             jobs,
		OutputsIdentical: resultsIdentical(cold, warm),
		CacheHits:        warmCache.Hits,
		ColdReads:        coldStats.BlockReads,
		WarmReads:        warmStats.BlockReads,
	}, nil
}

// resultsIdentical compares two runs' job outputs byte for byte.
func resultsIdentical(a, b map[scheduler.JobID]*mapreduce.Result) bool {
	if len(a) != len(b) {
		return false
	}
	ids := make([]scheduler.JobID, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ra, rb := a[id], b[id]
		if rb == nil || ra.Name != rb.Name || len(ra.Output) != len(rb.Output) {
			return false
		}
		for i := range ra.Output {
			if ra.Output[i] != rb.Output[i] {
				return false
			}
		}
	}
	return true
}
