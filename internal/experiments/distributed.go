package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/remote"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

// DistributedScanSavings runs the shared-scan comparison on the real
// distributed substrate: workers serving map/reduce tasks over TCP,
// the master placing tasks locality-first. It reports the cluster-wide
// physical block reads under S^3 versus FIFO for the same job set —
// the distributed analogue of Figure 4's I/O story, measured rather
// than simulated.
type DistributedResult struct {
	Workers     int
	Jobs        int
	Blocks      int
	S3Reads     int64
	FIFOReads   int64
	S3Rounds    int
	FIFORounds  int
	OutputAgree bool // S3 and FIFO produced identical job outputs
}

// DistributedConfig scales the experiment.
type DistributedConfig struct {
	Workers   int
	Jobs      int
	Blocks    int
	BlockSize int64
	Seed      int64
}

// DefaultDistributedConfig returns a laptop-scale configuration.
func DefaultDistributedConfig() DistributedConfig {
	return DistributedConfig{Workers: 3, Jobs: 3, Blocks: 12, BlockSize: 2 << 10, Seed: 5}
}

// DistributedScanSavings executes the experiment.
func DistributedScanSavings(cfg DistributedConfig) (DistributedResult, error) {
	if cfg.Workers <= 0 || cfg.Jobs <= 0 || cfg.Blocks <= 0 || cfg.BlockSize <= 0 {
		return DistributedResult{}, fmt.Errorf("experiments: invalid distributed config %+v", cfg)
	}
	refs := make(map[scheduler.JobID]remote.JobRef, cfg.Jobs)
	prefixes := workload.DistinctPrefixes(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		refs[scheduler.JobID(i+1)] = remote.JobRef{
			Name:      fmt.Sprintf("wc-%s", prefixes[i]),
			Factory:   "wordcount",
			Param:     prefixes[i],
			NumReduce: 2,
		}
	}

	run := func(mk func(p *dfs.SegmentPlan) (scheduler.Scheduler, error)) (int64, int, map[scheduler.JobID]string, error) {
		reg := remote.NewStandardRegistry()
		var addrs []string
		var workers []*remote.Worker
		defer func() {
			for _, w := range workers {
				w.Close()
			}
		}()
		for i := 0; i < cfg.Workers; i++ {
			store := dfs.MustStore(1, 1)
			if _, err := workload.AddTextFile(store, "corpus", cfg.Blocks, cfg.BlockSize, cfg.Seed); err != nil {
				return 0, 0, nil, err
			}
			w := remote.NewWorker(store, reg)
			addr, err := w.Serve("127.0.0.1:0")
			if err != nil {
				return 0, 0, nil, err
			}
			workers = append(workers, w)
			addrs = append(addrs, addr)
		}
		master, err := remote.Dial(addrs, refs)
		if err != nil {
			return 0, 0, nil, err
		}
		defer master.Close()
		master.SetTimeScale(1e6)

		planStore := dfs.MustStore(cfg.Workers, 1)
		f, err := planStore.AddMetaFile("corpus", cfg.Blocks, cfg.BlockSize)
		if err != nil {
			return 0, 0, nil, err
		}
		plan, err := dfs.PlanSegments(f, cfg.Workers)
		if err != nil {
			return 0, 0, nil, err
		}
		sched, err := mk(plan)
		if err != nil {
			return 0, 0, nil, err
		}
		var arrivals []driver.Arrival
		for id := range refs {
			arrivals = append(arrivals, driver.Arrival{Job: scheduler.JobMeta{ID: id, File: "corpus"}, At: 0})
		}
		res, err := driver.Run(sched, master, arrivals)
		if err != nil {
			return 0, 0, nil, err
		}
		stats, err := master.WorkerStats()
		if err != nil {
			return 0, 0, nil, err
		}
		var reads int64
		for _, st := range stats {
			reads += st.BlockReads
		}
		outs := make(map[scheduler.JobID]string, cfg.Jobs)
		for id, kvs := range master.Results() {
			outs[id] = fmt.Sprint(kvs)
		}
		return reads, res.Rounds, outs, nil
	}

	s3Reads, s3Rounds, s3Out, err := run(func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
		return core.New(p, nil), nil
	})
	if err != nil {
		return DistributedResult{}, fmt.Errorf("experiments: distributed S3: %w", err)
	}
	fifoReads, fifoRounds, fifoOut, err := run(func(p *dfs.SegmentPlan) (scheduler.Scheduler, error) {
		return scheduler.NewFIFO(p, nil), nil
	})
	if err != nil {
		return DistributedResult{}, fmt.Errorf("experiments: distributed FIFO: %w", err)
	}
	agree := len(s3Out) == len(fifoOut)
	for id, out := range s3Out {
		if fifoOut[id] != out {
			agree = false
		}
	}
	return DistributedResult{
		Workers:     cfg.Workers,
		Jobs:        cfg.Jobs,
		Blocks:      cfg.Blocks,
		S3Reads:     s3Reads,
		FIFOReads:   fifoReads,
		S3Rounds:    s3Rounds,
		FIFORounds:  fifoRounds,
		OutputAgree: agree,
	}, nil
}
