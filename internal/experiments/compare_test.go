package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3sched/internal/benchfmt"
	"s3sched/internal/workload"
)

// compareWorkload is a small full-featured workload: real text content
// (so engine cells run), a cache budget sized to hold the whole file
// (so cache counters are eviction-free and deterministic), no faults.
const compareWorkload = `{"kind":"workload","version":1,"name":"compare-test","nodes":2,"slotsPerNode":1,"replicas":1,"cacheMBPerNode":1,"cacheFrac":0.25,"cost":{"scanMBps":0.01,"mapMBps":0.5,"taskOverhead":0.05,"dispatchPerJob":0.01,"roundOverhead":0.1,"jobSetup":0.2,"sharePenalty":0.02,"tagPenalty":0.05,"reducePerRound":0.05,"reduceSetup":0.05}}
{"kind":"file","name":"corpus","content":"text","blocks":8,"blockBytes":4096,"segmentBlocks":2,"seed":11}
{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}
{"kind":"job","id":2,"at":3,"file":"corpus","factory":"wordcount","param":"a"}
{"kind":"job","id":3,"at":20,"file":"corpus","factory":"aggregation","param":""}
`

func parseCompareWorkload(t *testing.T) *workload.File {
	t.Helper()
	wf, err := workload.ParseFile(strings.NewReader(strings.Replace(compareWorkload,
		`"factory":"aggregation","param":""`, `"factory":"wordcount","param":"w"`, 1)))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return wf
}

func TestRunCompareFullMatrix(t *testing.T) {
	wf := parseCompareWorkload(t)
	rep, err := RunCompare(wf, CompareOptions{})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	// 3 schedulers × 2 engines × 2 pipelines × 2 caches.
	if len(rep.Cells) != 24 {
		t.Fatalf("got %d cells, want 24", len(rep.Cells))
	}
	digest, err := rep.DigestConsensus()
	if err != nil {
		t.Fatalf("DigestConsensus: %v", err)
	}
	if digest == "" {
		t.Fatal("no output digest on a content workload")
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.TET <= 0 || c.ART <= 0 || c.Rounds <= 0 {
			t.Fatalf("cell %s has degenerate metrics: %+v", c.Key, c)
		}
		if len(c.Jobs) != len(wf.Jobs) {
			t.Fatalf("cell %s has %d job rows, want %d", c.Key, len(c.Jobs), len(wf.Jobs))
		}
		if c.OutputDigest != digest {
			t.Fatalf("cell %s digest %.12s != consensus %.12s", c.Key, c.OutputDigest, digest)
		}
	}
	// Cache-on cells observe real (or modeled) cache hits: the sparse
	// third job re-scans blocks the first pass already read.
	warm := rep.Cell(benchfmt.CellKey{Scheduler: "s3", Engine: benchfmt.EngineReal, Cache: true})
	if warm == nil || warm.CacheHitRatio <= 0 {
		t.Fatalf("engine cache cell saw no hits: %+v", warm)
	}
}

// TestRunCompareDeterministic is the harness's determinism regression
// test: the same workload run twice encodes byte-identically — engine
// cells included, because their timings come from the cost model, not
// the wall clock.
func TestRunCompareDeterministic(t *testing.T) {
	wf := parseCompareWorkload(t)
	encode := func() []byte {
		rep, err := RunCompare(wf, CompareOptions{})
		if err != nil {
			t.Fatalf("RunCompare: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs of the same workload differ:\n%s\nvs\n%s", a, b)
	}
}

// TestRunCompareSimEngineTwins: a sim cell and its engine twin march
// through the same round sequence with the same virtual timings
// (cache-off cells; cache-on sim cells price warm reads the engine
// timer does not model).
func TestRunCompareSimEngineTwins(t *testing.T) {
	wf := parseCompareWorkload(t)
	rep, err := RunCompare(wf, CompareOptions{Caches: []bool{false}})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	for _, sched := range CompareSchedulers() {
		for _, pipe := range []bool{false, true} {
			simCell := rep.Cell(benchfmt.CellKey{Scheduler: sched, Engine: benchfmt.EngineSim, Pipeline: pipe})
			engCell := rep.Cell(benchfmt.CellKey{Scheduler: sched, Engine: benchfmt.EngineReal, Pipeline: pipe})
			if simCell == nil || engCell == nil {
				t.Fatalf("missing twin for %s/pipe=%v", sched, pipe)
			}
			if simCell.TET != engCell.TET || simCell.Rounds != engCell.Rounds {
				t.Fatalf("%s pipe=%v: sim TET=%v rounds=%d, engine TET=%v rounds=%d",
					sched, pipe, simCell.TET, simCell.Rounds, engCell.TET, engCell.Rounds)
			}
			if simCell.ART != engCell.ART {
				t.Fatalf("%s pipe=%v: sim ART=%v != engine ART=%v", sched, pipe, simCell.ART, engCell.ART)
			}
		}
	}
}

func TestRunCompareSubMatrixAndMeta(t *testing.T) {
	wf := parseCompareWorkload(t)
	rep, err := RunCompare(wf, CompareOptions{
		Schedulers: []string{"s3"},
		Engines:    []string{benchfmt.EngineSim},
		Pipelines:  []bool{false},
		Caches:     []bool{false},
	})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("sub-matrix gave %d cells", len(rep.Cells))
	}

	// Meta content: engine cells drop out, digests are empty.
	meta, err := workload.ParseFile(strings.NewReader(strings.NewReplacer(
		`"content":"text"`, `"content":"meta"`,
		`"seed":11`, `"seed":0`,
	).Replace(compareWorkload)))
	if err != nil {
		t.Fatalf("meta workload: %v", err)
	}
	mrep, err := RunCompare(meta, CompareOptions{})
	if err != nil {
		t.Fatalf("RunCompare(meta): %v", err)
	}
	if len(mrep.Cells) != 12 {
		t.Fatalf("meta matrix gave %d cells, want 12 (sim only)", len(mrep.Cells))
	}
	for i := range mrep.Cells {
		if mrep.Cells[i].Key.Engine != benchfmt.EngineSim {
			t.Fatalf("meta workload ran engine cell %s", mrep.Cells[i].Key)
		}
		if mrep.Cells[i].OutputDigest != "" {
			t.Fatalf("meta cell %s carries a digest", mrep.Cells[i].Key)
		}
	}
	// Engine-only on meta content is an explicit error.
	if _, err := RunCompare(meta, CompareOptions{Engines: []string{benchfmt.EngineReal}}); err == nil {
		t.Fatal("engine-only meta compare did not fail")
	}
	// Cache cells without a budget are an explicit error.
	noCache := parseCompareWorkload(t)
	noCache.Header.CacheMBPerNode = 0
	if _, err := RunCompare(noCache, CompareOptions{Caches: []bool{true}}); err == nil {
		t.Fatal("cache cells without a budget did not fail")
	}
}

// TestRunCompareLineitem covers the selection/aggregation factories on
// lineitem content through the matrix (map-only and combiner jobs take
// different engine paths than wordcount).
func TestRunCompareLineitem(t *testing.T) {
	src := `{"kind":"workload","version":1,"name":"li","nodes":2,"slotsPerNode":1,"replicas":1,"cost":{"scanMBps":0.01,"mapMBps":0.5,"taskOverhead":0.05,"dispatchPerJob":0.01,"roundOverhead":0.1,"jobSetup":0.2,"sharePenalty":0.02,"tagPenalty":0.05,"reducePerRound":0.05,"reduceSetup":0.05}}
{"kind":"file","name":"lineitem","content":"lineitem","blocks":8,"blockBytes":4096,"segmentBlocks":2,"seed":3}
{"kind":"job","id":1,"at":0,"file":"lineitem","factory":"selection","param":"25"}
{"kind":"job","id":2,"at":1,"file":"lineitem","factory":"aggregation","numReduce":2}
`
	wf, err := workload.ParseFile(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	rep, err := RunCompare(wf, CompareOptions{Pipelines: []bool{true}})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	digest, err := rep.DigestConsensus()
	if err != nil || digest == "" {
		t.Fatalf("DigestConsensus = %q, %v", digest, err)
	}
}

func TestRunCompareRejects(t *testing.T) {
	wf := parseCompareWorkload(t)
	if _, err := RunCompare(wf, CompareOptions{Schedulers: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := RunCompare(wf, CompareOptions{Engines: []string{"abacus"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestCanonicalWorkloadOrdering runs the committed canonical workload
// (the one the CI perf gate diffs against bench/baseline.json) and
// asserts the paper's headline result holds on it: on a sparse arrival
// pattern, S3's shared circular scan beats MRShare's batch-everything,
// which beats FIFO's scan-per-job, on both TET and ART.
func TestCanonicalWorkloadOrdering(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "bench", "canonical.jsonl"))
	if err != nil {
		t.Fatalf("canonical workload: %v", err)
	}
	defer f.Close()
	wf, err := workload.ParseFile(f)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	rep, err := RunCompare(wf, CompareOptions{
		Engines:   []string{benchfmt.EngineSim},
		Pipelines: []bool{false},
		Caches:    []bool{false},
	})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	cell := func(sched string) *benchfmt.Cell {
		c := rep.Cell(benchfmt.CellKey{Scheduler: sched, Engine: benchfmt.EngineSim})
		if c == nil {
			t.Fatalf("no %s cell", sched)
		}
		return c
	}
	s3, mrs, fifo := cell("s3"), cell("mrs1"), cell("fifo")
	if !(s3.TET < mrs.TET && mrs.TET < fifo.TET) {
		t.Errorf("TET ordering broken: s3=%.2f mrs1=%.2f fifo=%.2f (want s3 < mrs1 < fifo)",
			s3.TET, mrs.TET, fifo.TET)
	}
	if !(s3.ART < mrs.ART && s3.ART < fifo.ART) {
		t.Errorf("S3 does not win ART: s3=%.2f mrs1=%.2f fifo=%.2f", s3.ART, mrs.ART, fifo.ART)
	}
}

// TestRunCompareFaultWorkload exercises the fault path end to end on
// both engines: the sim prices modeled retries, the engine recovers
// real injected read faults, and outputs still match the fault-free
// solo reference.
func TestRunCompareFaultWorkload(t *testing.T) {
	faulty, err := workload.ParseFile(strings.NewReader(strings.NewReplacer(
		`"cacheMBPerNode":1`, `"faultRate":0.05,"faultSeed":7,"cacheMBPerNode":1`,
		`"factory":"aggregation","param":""`, `"factory":"wordcount","param":"w"`,
	).Replace(compareWorkload)))
	if err != nil {
		t.Fatalf("fault workload: %v", err)
	}
	rep, err := RunCompare(faulty, CompareOptions{
		Schedulers: []string{"s3"},
		Pipelines:  []bool{false},
		Caches:     []bool{false},
	})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	if _, err := rep.DigestConsensus(); err != nil {
		t.Fatalf("fault injection changed outputs: %v", err)
	}
	simCell := rep.Cell(benchfmt.CellKey{Scheduler: "s3", Engine: benchfmt.EngineSim})
	if simCell == nil || simCell.FaultRetries == 0 {
		t.Fatalf("sim cell priced no retries at 5%% fault rate: %+v", simCell)
	}
}
