package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"s3sched/internal/benchfmt"
	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/faults"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/pipeline"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Differential benchmark: run one workload file through the
// {scheduler} × {sim|engine} × {pipeline} × {cache} matrix and emit one
// benchfmt.Cell per configuration, every cell comparable because every
// cell saw the identical workload. Two properties make the report a
// regression gate rather than a one-off snapshot:
//
//   - Determinism. Sim cells are priced by the cost model. Engine
//     cells run the real in-process MapReduce for *outputs* but take
//     their *timings* from a sibling sim executor over the same store
//     (pricedExec below), so a report is byte-for-byte reproducible —
//     wall clocks never leak into it — and a sim cell and its engine
//     twin march through the same round sequence with the same TET.
//
//   - Output digests. Every engine cell digests its jobs' real
//     outputs; sim cells (which execute nothing) carry the reference
//     digest obtained by running each job *alone* on a fresh store.
//     All cells of a report carrying one identical digest is the
//     harness's proof that scan sharing, pipelining, caching and
//     scheduling order never change what a job computes.

// CompareOptions selects a sub-matrix. The zero value means the full
// matrix the workload supports.
type CompareOptions struct {
	// Schedulers is the scheme subset ("s3", "fifo", "mrs1"); nil =
	// all three.
	Schedulers []string
	// Engines is the execution subset (benchfmt.EngineSim,
	// benchfmt.EngineReal); nil = both, with the engine dropped for
	// meta-content workloads (no bytes to execute).
	Engines []string
	// Pipelines/Caches are the toggle subsets; nil = {off, on}, with
	// cache-on dropped when the workload has no cache budget.
	Pipelines []bool
	Caches    []bool
}

// CompareSchedulers are the schemes the harness compares: the paper's
// headline trio. MRShare runs as one batch of all jobs (mrs1), its
// strongest configuration for a known job set.
func CompareSchedulers() []string { return []string{"s3", "fifo", "mrs1"} }

// makeScheduler builds a fresh scheduler for the scheme. A single-file
// workload with no DAG gets the exact legacy single-plan constructors
// (existing baselines stay byte-identical); multi-file and DAG
// workloads get the multi-plan constructors, which also accept derived
// files registered mid-run. jobsPerFile counts the declared readers of
// each file — mrs1 batches each file's whole job set, its strongest
// configuration for a known pattern.
func makeScheduler(name string, plans []*dfs.SegmentPlan, jobsPerFile map[string]int, totalJobs int, multi bool) (scheduler.Scheduler, error) {
	if !multi {
		switch name {
		case "s3":
			return core.New(plans[0], nil), nil
		case "fifo":
			return scheduler.NewFIFO(plans[0], nil), nil
		case "mrs1":
			return scheduler.NewMRShare(plans[0], []int{totalJobs}, nil)
		default:
			return nil, fmt.Errorf("experiments: unknown compare scheduler %q", name)
		}
	}
	switch name {
	case "s3":
		return core.NewMultiFile(plans, nil)
	case "fifo":
		return scheduler.NewMultiFIFO(plans, nil)
	case "mrs1":
		sizes := make(map[string][]int, len(plans))
		for _, p := range plans {
			n := jobsPerFile[p.File().Name]
			if n < 1 {
				n = 1 // a file nobody reads yet still needs a valid batch plan
			}
			sizes[p.File().Name] = []int{n}
		}
		return scheduler.NewMultiMRShare(plans, sizes, nil)
	default:
		return nil, fmt.Errorf("experiments: unknown compare scheduler %q", name)
	}
}

// planRegistrar is the mid-run file-registration surface every
// multi-plan scheduler exposes (scheduler.PlanRegistrar; core.MultiFile
// matches it structurally).
type planRegistrar interface {
	AddPlan(plan *dfs.SegmentPlan, expectJobs int) error
}

// derivedGeometry resolves the block size and segment granularity of
// job id's derived output: inherited from the producing job's own
// input file, recursing through chained stages until a declared file
// grounds it.
func derivedGeometry(wf *workload.File, id scheduler.JobID) (int64, int, error) {
	for i := range wf.Jobs {
		if wf.Jobs[i].ID != id {
			continue
		}
		input := wf.Jobs[i].File
		for j := range wf.Files {
			if wf.Files[j].Name == input {
				return wf.Files[j].BlockBytes, wf.Files[j].SegmentBlocks, nil
			}
		}
		producer, ok := wf.DerivedProducer(input)
		if !ok {
			return 0, 0, fmt.Errorf("experiments: job %d reads unknown file %q", id, input)
		}
		return derivedGeometry(wf, producer)
	}
	return 0, 0, fmt.Errorf("experiments: no job %d in workload", id)
}

// derivedConsumers counts the jobs reading each derived file, keyed by
// producer id — the expectJobs hint AddPlan takes.
func derivedConsumers(wf *workload.File) map[scheduler.JobID]int {
	out := make(map[scheduler.JobID]int)
	for i := range wf.Jobs {
		if producer, ok := wf.DerivedProducer(wf.Jobs[i].File); ok {
			out[producer]++
		}
	}
	return out
}

// RunCompare runs the workload through the configured matrix and
// returns the report, cells in canonical order.
func RunCompare(wf *workload.File, opts CompareOptions) (*benchfmt.Report, error) {
	h := &wf.Header
	schedulers := opts.Schedulers
	if schedulers == nil {
		schedulers = CompareSchedulers()
	}
	engines := opts.Engines
	if engines == nil {
		engines = []string{benchfmt.EngineSim, benchfmt.EngineReal}
	}
	hasMeta := false
	for i := range wf.Files {
		if wf.Files[i].Content == workload.ContentMeta {
			hasMeta = true
		}
	}
	if hasMeta {
		kept := engines[:0:0]
		for _, e := range engines {
			if e == benchfmt.EngineReal {
				continue
			}
			kept = append(kept, e)
		}
		engines = kept
		if len(engines) == 0 {
			return nil, fmt.Errorf("experiments: workload %q is %s-content; engine cells cannot run", h.Name, workload.ContentMeta)
		}
	}
	pipelines := opts.Pipelines
	if pipelines == nil {
		pipelines = []bool{false, true}
	}
	caches := opts.Caches
	if caches == nil {
		caches = []bool{false}
		if h.CacheMBPerNode > 0 {
			caches = append(caches, true)
		}
	}
	for _, c := range caches {
		if c && h.CacheMBPerNode <= 0 {
			return nil, fmt.Errorf("experiments: workload %q has no cache budget; cache cells cannot run", h.Name)
		}
	}

	// The reference digest: each job run alone on a fresh, uncached,
	// fault-free store (dependencies' outputs pre-materialized for DAG
	// stages). Sim cells carry it directly; engine cells must reproduce
	// it. The reference also measures each derived file's block count —
	// the geometry sim cells price materialized stage outputs under.
	refDigest := ""
	var refBlocks map[scheduler.JobID]int
	if !hasMeta {
		var err error
		refDigest, refBlocks, err = soloReference(wf)
		if err != nil {
			return nil, fmt.Errorf("experiments: solo reference run: %w", err)
		}
	}

	report := &benchfmt.Report{
		Version:        benchfmt.Version,
		Workload:       h.Name,
		WorkloadDigest: wf.Digest(),
	}
	for _, schedName := range schedulers {
		for _, engine := range engines {
			for _, pipe := range pipelines {
				for _, cache := range caches {
					key := benchfmt.CellKey{Scheduler: schedName, Engine: engine, Pipeline: pipe, Cache: cache}
					cell, err := runCell(wf, key, refDigest, refBlocks)
					if err != nil {
						return nil, fmt.Errorf("experiments: cell %s: %w", key, err)
					}
					report.Cells = append(report.Cells, cell)
				}
			}
		}
	}
	report.Sort()
	if _, err := report.DigestConsensus(); err != nil {
		return nil, err
	}
	return report, nil
}

// runCell runs one matrix configuration from a completely fresh
// environment (store, scheduler, executor), so cells cannot contaminate
// each other.
func runCell(wf *workload.File, key benchfmt.CellKey, refDigest string, refBlocks map[scheduler.JobID]int) (benchfmt.Cell, error) {
	h := &wf.Header
	store, err := dfs.NewStore(h.Nodes, h.Replicas)
	if err != nil {
		return benchfmt.Cell{}, err
	}
	plans := make([]*dfs.SegmentPlan, len(wf.Files))
	jobsPerFile := make(map[string]int, len(wf.Files))
	for i := range wf.Files {
		file, err := wf.Files[i].AddTo(store)
		if err != nil {
			return benchfmt.Cell{}, err
		}
		plans[i], err = dfs.PlanSegments(file, wf.Files[i].SegmentBlocks)
		if err != nil {
			return benchfmt.Cell{}, err
		}
	}
	for i := range wf.Jobs {
		jobsPerFile[wf.Jobs[i].File]++
	}
	hasDAG := wf.HasDAG()
	multi := len(wf.Files) > 1 || hasDAG
	sched, err := makeScheduler(key.Scheduler, plans, jobsPerFile, len(wf.Jobs), multi)
	if err != nil {
		return benchfmt.Cell{}, err
	}
	entries := wf.Entries()
	arrivals := make([]driver.Arrival, len(entries))
	for i, e := range entries {
		arrivals[i] = driver.Arrival{Job: e.Job, At: e.At}
	}
	model := NormalModel()
	if h.Cost != nil {
		model = *h.Cost
	}

	var exec driver.Executor
	var engineExec *driver.EngineExecutor
	switch key.Engine {
	case benchfmt.EngineSim:
		simExec := sim.NewExecutor(sim.NewCluster(h.Nodes, h.SlotsPerNode), store, model)
		if key.Cache {
			// A v1 workload (no cachePolicy) prices under the original
			// cluster-aggregate LRU model, keeping existing baselines
			// byte-identical; a v2 policy selects the sharded policy twin
			// driven by the scheduler's scan hints.
			if h.CachePolicy == "" {
				if err := simExec.EnableCache(int64(h.CacheMBPerNode)<<20*int64(h.Nodes), h.CacheFrac); err != nil {
					return benchfmt.Cell{}, err
				}
			} else {
				if err := simExec.EnableCachePolicy(int64(h.CacheMBPerNode)<<20, h.CacheFrac, h.CachePolicy); err != nil {
					return benchfmt.Cell{}, err
				}
				wireScanHints(sched, simExec.HandleScanHint)
			}
		}
		if h.FaultRate > 0 {
			if err := simExec.SetFaultModel(sim.FaultModel{
				Seed:          h.FaultSeed,
				BlockFailRate: h.FaultRate,
				MaxAttempts:   4,
				RetrySec:      5,
			}); err != nil {
				return benchfmt.Cell{}, err
			}
		}
		exec = simExec
	case benchfmt.EngineReal:
		if key.Cache {
			if _, err := store.EnableCachePolicy(int64(h.CacheMBPerNode)<<20, cellPolicy(h)); err != nil {
				return benchfmt.Cell{}, err
			}
			if h.CachePolicy != "" {
				wireScanHints(sched, store.HandleScanHint)
			}
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, h.SlotsPerNode))
		if h.FaultRate > 0 {
			// Real injected read faults, bounded below the retry budget
			// so recovery is guaranteed and outputs stay exact.
			inj, err := faults.New(faults.Config{
				Seed:                h.FaultSeed,
				ReadFailRate:        h.FaultRate,
				MaxInjectedPerBlock: 2,
			})
			if err != nil {
				return benchfmt.Cell{}, err
			}
			store.SetReadFault(inj.FailRead)
			if err := engine.SetRetryPolicy(mapreduce.RetryPolicy{MaxAttempts: 4}); err != nil {
				return benchfmt.Cell{}, err
			}
		}
		specs, err := wf.EngineSpecs()
		if err != nil {
			return benchfmt.Cell{}, err
		}
		engineExec = driver.NewEngineExecutor(engine, specs)
		// The timer sibling prices the same rounds the engine executes,
		// over the same store, so engine cells get the sim's
		// deterministic virtual timings (fault pricing excluded: the
		// engine already recovers its real injected faults).
		exec = &pricedExec{
			inner: engineExec,
			timer: sim.NewExecutor(sim.NewCluster(h.Nodes, h.SlotsPerNode), store, model),
		}
	default:
		return benchfmt.Cell{}, fmt.Errorf("unknown engine %q", key.Engine)
	}

	var res *driver.Result
	if hasDAG {
		// DAG cells run under a pipeline coordinator: roots arrive like
		// a trace; a finished producer's output is materialized into the
		// cell's store, its segment plan registered with the scheduler,
		// and its dependents released into the same circular pass.
		mat := cellMaterializer(wf, key, store, sched, engineExec, model, refBlocks)
		stages := make([]pipeline.Stage, len(wf.Jobs))
		for i := range wf.Jobs {
			stages[i] = pipeline.Stage{
				Job:       wf.Jobs[i].Meta(),
				At:        vclock.Time(wf.Jobs[i].At),
				DependsOn: wf.Jobs[i].DependsOn,
			}
		}
		coord, cerr := pipeline.NewCoordinator(stages, mat)
		if cerr != nil {
			return benchfmt.Cell{}, cerr
		}
		res, err = runtime.Run(sched, exec, coord, runtime.Options{Pipeline: key.Pipeline})
		if err != nil {
			return benchfmt.Cell{}, err
		}
		if cerr := coord.Err(); cerr != nil {
			return benchfmt.Cell{}, cerr
		}
		if left := coord.Unfinished(); len(left) > 0 {
			return benchfmt.Cell{}, fmt.Errorf("DAG stages %v never became ready", left)
		}
		if failed := coord.Failed(); len(failed) > 0 {
			return benchfmt.Cell{}, fmt.Errorf("DAG stages %v cascade-failed", failed)
		}
	} else {
		res, err = driver.RunOpts(sched, exec, arrivals, driver.Options{Pipeline: key.Pipeline})
		if err != nil {
			return benchfmt.Cell{}, err
		}
	}
	sum, err := res.Metrics.Summarize(key.String())
	if err != nil {
		return benchfmt.Cell{}, err
	}
	rows, err := res.Metrics.JobTable()
	if err != nil {
		return benchfmt.Cell{}, err
	}
	cell := benchfmt.Cell{
		Key:           key,
		TET:           float64(sum.TET),
		ART:           float64(sum.ART),
		P95:           float64(sum.P95),
		Rounds:        res.Rounds,
		CacheHitRatio: res.Metrics.CacheStats().HitRatio(),
		FaultRetries:  res.Metrics.FaultStats().Retries,
		OutputDigest:  refDigest,
		Jobs:          make([]benchfmt.JobTiming, len(rows)),
	}
	for i, row := range rows {
		cell.Jobs[i] = benchfmt.JobTiming{
			ID:          int(row.ID),
			SubmittedAt: float64(row.SubmittedAt),
			StartedAt:   float64(row.StartedAt),
			CompletedAt: float64(row.CompletedAt),
			Response:    float64(row.Response),
		}
	}
	if engineExec != nil {
		// Engine cells earn their digest from the outputs they actually
		// produced; a scheduler that corrupted results would disagree
		// with the sim cells' reference digest and fail consensus.
		cell.OutputDigest = digestResults(engineExec.Results())
	}
	return cell, nil
}

// cellMaterializer builds the pipeline.Materializer for one DAG cell.
// Engine cells write the producer's real reduce output into the store
// via mapreduce.StoreResult (uniform padded blocks); sim cells, which
// execute nothing, register priced metadata with the block count the
// solo reference measured — so both cells see a derived file of
// identical geometry and every scan of it prices identically. The
// returned delay is the cost model's materialization charge, deferring
// the dependents' release.
func cellMaterializer(
	wf *workload.File,
	key benchfmt.CellKey,
	store *dfs.Store,
	sched scheduler.Scheduler,
	engineExec *driver.EngineExecutor,
	model sim.CostModel,
	refBlocks map[scheduler.JobID]int,
) pipeline.Materializer {
	consumers := derivedConsumers(wf)
	return func(id scheduler.JobID, at vclock.Time) (vclock.Duration, error) {
		n := consumers[id]
		if n == 0 {
			return 0, nil // dependents exist but none read the output (pure ordering)
		}
		name := workload.DerivedFileName(id)
		blockBytes, segBlocks, err := derivedGeometry(wf, id)
		if err != nil {
			return 0, err
		}
		var file *dfs.File
		if engineExec != nil {
			res, ok := engineExec.Results()[id]
			if !ok {
				return 0, fmt.Errorf("engine has no result for finished job %d", id)
			}
			file, err = mapreduce.StoreResult(store, name, blockBytes, res)
			if err != nil {
				return 0, err
			}
			if want, ok := refBlocks[id]; ok && file.NumBlocks != want {
				return 0, fmt.Errorf("derived file %q is %d blocks, solo reference wrote %d", name, file.NumBlocks, want)
			}
		} else {
			want, ok := refBlocks[id]
			if !ok {
				return 0, fmt.Errorf("no reference block count for job %d's output", id)
			}
			file, err = store.AddMetaFile(name, want, blockBytes)
			if err != nil {
				return 0, err
			}
		}
		plan, err := dfs.PlanSegments(file, segBlocks)
		if err != nil {
			return 0, err
		}
		reg, ok := sched.(planRegistrar)
		if !ok {
			return 0, fmt.Errorf("scheduler %q cannot register files mid-run", key.Scheduler)
		}
		if err := reg.AddPlan(plan, n); err != nil {
			return 0, err
		}
		return model.MaterializeDelay(int64(file.NumBlocks) * blockBytes), nil
	}
}

// cellPolicy resolves the header's eviction policy; v1 files (no
// cachePolicy field) get the LRU the old schema implied.
func cellPolicy(h *workload.FileHeader) string {
	if h.CachePolicy == "" {
		return dfs.PolicyLRU
	}
	return h.CachePolicy
}

// wireScanHints connects the scheduler's circular-cursor hints to a
// cache. Only the S^3 family emits hints; for the other schemes the
// cache simply runs unhinted (lru/2q need none, and cursor degrades to
// plain LRU order).
func wireScanHints(sched scheduler.Scheduler, h core.ScanHinter) {
	if s, ok := sched.(interface{ SetScanHinter(core.ScanHinter) }); ok {
		s.SetScanHinter(h)
	}
}

// soloReference runs every job alone, each on a fresh uncached
// fault-free store, and digests the outputs — the ground truth any
// shared/pipelined/cached execution must reproduce. Jobs run in
// dependency order: a DAG stage's derived input is pre-materialized
// from its producer's solo output before the stage runs, and each
// derived file's block count is recorded — the geometry sim cells
// price materialized stage outputs under.
func soloReference(wf *workload.File) (string, map[scheduler.JobID]int, error) {
	h := &wf.Header
	order, err := topoOrder(wf)
	if err != nil {
		return "", nil, err
	}
	results := make(map[scheduler.JobID]*mapreduce.Result, len(wf.Jobs))
	refBlocks := make(map[scheduler.JobID]int)
	for _, j := range order {
		store, err := dfs.NewStore(h.Nodes, h.Replicas)
		if err != nil {
			return "", nil, err
		}
		for i := range wf.Files {
			if _, err := wf.Files[i].AddTo(store); err != nil {
				return "", nil, err
			}
		}
		if producer, ok := wf.DerivedProducer(j.File); ok {
			res, done := results[producer]
			if !done {
				return "", nil, fmt.Errorf("job %d runs before its producer %d", j.ID, producer)
			}
			blockBytes, _, err := derivedGeometry(wf, producer)
			if err != nil {
				return "", nil, err
			}
			file, err := mapreduce.StoreResult(store, j.File, blockBytes, res)
			if err != nil {
				return "", nil, fmt.Errorf("materializing %q for job %d: %w", j.File, j.ID, err)
			}
			refBlocks[producer] = file.NumBlocks
		}
		content, ok := wf.ContentOf(j.File)
		if !ok {
			return "", nil, fmt.Errorf("job %d reads unknown file %q", j.ID, j.File)
		}
		spec, err := j.EngineSpec(content)
		if err != nil {
			return "", nil, err
		}
		res, err := mapreduce.NewEngine(mapreduce.MustCluster(store, h.SlotsPerNode)).RunJob(spec)
		if err != nil {
			return "", nil, fmt.Errorf("job %d: %w", j.ID, err)
		}
		results[j.ID] = res
	}
	return digestResults(results), refBlocks, nil
}

// topoOrder returns the jobs in dependency (Kahn) order, stable by id
// among ready jobs. Validate guarantees acyclicity for parsed files;
// the error path covers hand-built ones.
func topoOrder(wf *workload.File) ([]*workload.FileJob, error) {
	indeg := make(map[scheduler.JobID]int, len(wf.Jobs))
	byID := make(map[scheduler.JobID]*workload.FileJob, len(wf.Jobs))
	dependents := make(map[scheduler.JobID][]scheduler.JobID)
	for i := range wf.Jobs {
		j := &wf.Jobs[i]
		byID[j.ID] = j
		indeg[j.ID] = len(j.DependsOn)
		for _, dep := range j.DependsOn {
			dependents[dep] = append(dependents[dep], j.ID)
		}
	}
	ready := make([]scheduler.JobID, 0, len(wf.Jobs))
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	out := make([]*workload.FileJob, 0, len(wf.Jobs))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, byID[id])
		for _, cid := range dependents[id] {
			indeg[cid]--
			if indeg[cid] == 0 {
				ready = append(ready, cid)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(out) != len(wf.Jobs) {
		return nil, fmt.Errorf("dependency cycle among jobs")
	}
	return out, nil
}

// digestResults fingerprints job outputs: sha256 over jobs in id order,
// each job's sorted key/value records framed unambiguously.
func digestResults(results map[scheduler.JobID]*mapreduce.Result) string {
	ids := make([]scheduler.JobID, 0, len(results))
	for id := range results {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	hsh := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(hsh, "job %d %d\n", id, len(results[id].Output))
		for _, kv := range results[id].Output {
			fmt.Fprintf(hsh, "%d %d\n%s%s", len(kv.Key), len(kv.Value), kv.Key, kv.Value)
		}
	}
	return hex.EncodeToString(hsh.Sum(nil))
}

// pricedExec is the engine-cell executor: the inner EngineExecutor
// does the real work (scans, shuffles, reduces, caching, fault
// recovery) while the timer — a sim executor over the same store —
// supplies the round durations. The wall clock never reaches the
// scheduler, so engine runs are as deterministic as sim runs, and a
// sim cell with the same scheduler marches through the identical round
// sequence.
type pricedExec struct {
	inner *driver.EngineExecutor
	timer *sim.Executor
}

var (
	_ runtime.StageExecutor    = (*pricedExec)(nil)
	_ runtime.FailureReporter  = (*pricedExec)(nil)
	_ runtime.FaultStatsSource = (*pricedExec)(nil)
	_ runtime.CacheStatsSource = (*pricedExec)(nil)
)

// ExecRound implements runtime.Executor.
func (p *pricedExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	mapDur, stage, err := p.ExecMapStage(r)
	if err != nil {
		return 0, err
	}
	redDur, err := stage()
	if err != nil {
		return 0, err
	}
	return mapDur + redDur, nil
}

// ExecMapStage implements runtime.StageExecutor: the inner executor's
// map stage runs for real, then the timer prices the same round; the
// returned reduce stage chains the inner reduce (for outputs) with the
// timer's (for duration).
func (p *pricedExec) ExecMapStage(r scheduler.Round) (vclock.Duration, runtime.ReduceStage, error) {
	_, innerStage, err := p.inner.ExecMapStage(r)
	if err != nil {
		var lost *scheduler.RoundLostError
		if errors.As(err, &lost) {
			// Re-price the lost round's elapsed time deterministically;
			// the requeue path must not observe wall time either.
			if mapDur, _, perr := p.timer.ExecMapStage(r); perr == nil {
				lost.Elapsed = mapDur
			}
		}
		return 0, nil, err
	}
	mapDur, timerStage, err := p.timer.ExecMapStage(r)
	if err != nil {
		return 0, nil, err
	}
	stage := func() (vclock.Duration, error) {
		if _, err := innerStage(); err != nil {
			return 0, err
		}
		return timerStage()
	}
	return mapDur, stage, nil
}

// TakeJobFailures implements runtime.FailureReporter.
func (p *pricedExec) TakeJobFailures() []scheduler.JobFailure { return p.inner.TakeJobFailures() }

// FaultStats implements runtime.FaultStatsSource.
func (p *pricedExec) FaultStats() metrics.FaultStats { return p.inner.FaultStats() }

// CacheStats implements runtime.CacheStatsSource.
func (p *pricedExec) CacheStats() metrics.CacheStats { return p.inner.CacheStats() }
