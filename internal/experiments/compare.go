package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"s3sched/internal/benchfmt"
	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/faults"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Differential benchmark: run one workload file through the
// {scheduler} × {sim|engine} × {pipeline} × {cache} matrix and emit one
// benchfmt.Cell per configuration, every cell comparable because every
// cell saw the identical workload. Two properties make the report a
// regression gate rather than a one-off snapshot:
//
//   - Determinism. Sim cells are priced by the cost model. Engine
//     cells run the real in-process MapReduce for *outputs* but take
//     their *timings* from a sibling sim executor over the same store
//     (pricedExec below), so a report is byte-for-byte reproducible —
//     wall clocks never leak into it — and a sim cell and its engine
//     twin march through the same round sequence with the same TET.
//
//   - Output digests. Every engine cell digests its jobs' real
//     outputs; sim cells (which execute nothing) carry the reference
//     digest obtained by running each job *alone* on a fresh store.
//     All cells of a report carrying one identical digest is the
//     harness's proof that scan sharing, pipelining, caching and
//     scheduling order never change what a job computes.

// CompareOptions selects a sub-matrix. The zero value means the full
// matrix the workload supports.
type CompareOptions struct {
	// Schedulers is the scheme subset ("s3", "fifo", "mrs1"); nil =
	// all three.
	Schedulers []string
	// Engines is the execution subset (benchfmt.EngineSim,
	// benchfmt.EngineReal); nil = both, with the engine dropped for
	// meta-content workloads (no bytes to execute).
	Engines []string
	// Pipelines/Caches are the toggle subsets; nil = {off, on}, with
	// cache-on dropped when the workload has no cache budget.
	Pipelines []bool
	Caches    []bool
}

// CompareSchedulers are the schemes the harness compares: the paper's
// headline trio. MRShare runs as one batch of all jobs (mrs1), its
// strongest configuration for a known job set.
func CompareSchedulers() []string { return []string{"s3", "fifo", "mrs1"} }

// makeScheduler builds a fresh scheduler for the scheme over plan.
func makeScheduler(name string, plan *dfs.SegmentPlan, numJobs int) (scheduler.Scheduler, error) {
	switch name {
	case "s3":
		return core.New(plan, nil), nil
	case "fifo":
		return scheduler.NewFIFO(plan, nil), nil
	case "mrs1":
		return scheduler.NewMRShare(plan, []int{numJobs}, nil)
	default:
		return nil, fmt.Errorf("experiments: unknown compare scheduler %q", name)
	}
}

// RunCompare runs the workload through the configured matrix and
// returns the report, cells in canonical order.
func RunCompare(wf *workload.File, opts CompareOptions) (*benchfmt.Report, error) {
	h := &wf.Header
	f := &wf.Files[0]
	schedulers := opts.Schedulers
	if schedulers == nil {
		schedulers = CompareSchedulers()
	}
	engines := opts.Engines
	if engines == nil {
		engines = []string{benchfmt.EngineSim, benchfmt.EngineReal}
	}
	if f.Content == workload.ContentMeta {
		kept := engines[:0:0]
		for _, e := range engines {
			if e == benchfmt.EngineReal {
				continue
			}
			kept = append(kept, e)
		}
		engines = kept
		if len(engines) == 0 {
			return nil, fmt.Errorf("experiments: workload %q is %s-content; engine cells cannot run", h.Name, workload.ContentMeta)
		}
	}
	pipelines := opts.Pipelines
	if pipelines == nil {
		pipelines = []bool{false, true}
	}
	caches := opts.Caches
	if caches == nil {
		caches = []bool{false}
		if h.CacheMBPerNode > 0 {
			caches = append(caches, true)
		}
	}
	for _, c := range caches {
		if c && h.CacheMBPerNode <= 0 {
			return nil, fmt.Errorf("experiments: workload %q has no cache budget; cache cells cannot run", h.Name)
		}
	}

	// The reference digest: each job run alone on a fresh, uncached,
	// fault-free store. Sim cells carry it directly; engine cells must
	// reproduce it.
	refDigest := ""
	if f.Content != workload.ContentMeta {
		var err error
		refDigest, err = soloReferenceDigest(wf)
		if err != nil {
			return nil, fmt.Errorf("experiments: solo reference run: %w", err)
		}
	}

	report := &benchfmt.Report{
		Version:        benchfmt.Version,
		Workload:       h.Name,
		WorkloadDigest: wf.Digest(),
	}
	for _, schedName := range schedulers {
		for _, engine := range engines {
			for _, pipe := range pipelines {
				for _, cache := range caches {
					key := benchfmt.CellKey{Scheduler: schedName, Engine: engine, Pipeline: pipe, Cache: cache}
					cell, err := runCell(wf, key, refDigest)
					if err != nil {
						return nil, fmt.Errorf("experiments: cell %s: %w", key, err)
					}
					report.Cells = append(report.Cells, cell)
				}
			}
		}
	}
	report.Sort()
	if _, err := report.DigestConsensus(); err != nil {
		return nil, err
	}
	return report, nil
}

// runCell runs one matrix configuration from a completely fresh
// environment (store, scheduler, executor), so cells cannot contaminate
// each other.
func runCell(wf *workload.File, key benchfmt.CellKey, refDigest string) (benchfmt.Cell, error) {
	h := &wf.Header
	f := &wf.Files[0]
	store, err := dfs.NewStore(h.Nodes, h.Replicas)
	if err != nil {
		return benchfmt.Cell{}, err
	}
	file, err := f.AddTo(store)
	if err != nil {
		return benchfmt.Cell{}, err
	}
	plan, err := dfs.PlanSegments(file, f.SegmentBlocks)
	if err != nil {
		return benchfmt.Cell{}, err
	}
	sched, err := makeScheduler(key.Scheduler, plan, len(wf.Jobs))
	if err != nil {
		return benchfmt.Cell{}, err
	}
	entries := wf.Entries()
	arrivals := make([]driver.Arrival, len(entries))
	for i, e := range entries {
		arrivals[i] = driver.Arrival{Job: e.Job, At: e.At}
	}
	model := NormalModel()
	if h.Cost != nil {
		model = *h.Cost
	}

	var exec driver.Executor
	var engineExec *driver.EngineExecutor
	switch key.Engine {
	case benchfmt.EngineSim:
		simExec := sim.NewExecutor(sim.NewCluster(h.Nodes, h.SlotsPerNode), store, model)
		if key.Cache {
			// A v1 workload (no cachePolicy) prices under the original
			// cluster-aggregate LRU model, keeping existing baselines
			// byte-identical; a v2 policy selects the sharded policy twin
			// driven by the scheduler's scan hints.
			if h.CachePolicy == "" {
				if err := simExec.EnableCache(int64(h.CacheMBPerNode)<<20*int64(h.Nodes), h.CacheFrac); err != nil {
					return benchfmt.Cell{}, err
				}
			} else {
				if err := simExec.EnableCachePolicy(int64(h.CacheMBPerNode)<<20, h.CacheFrac, h.CachePolicy); err != nil {
					return benchfmt.Cell{}, err
				}
				wireScanHints(sched, simExec.HandleScanHint)
			}
		}
		if h.FaultRate > 0 {
			if err := simExec.SetFaultModel(sim.FaultModel{
				Seed:          h.FaultSeed,
				BlockFailRate: h.FaultRate,
				MaxAttempts:   4,
				RetrySec:      5,
			}); err != nil {
				return benchfmt.Cell{}, err
			}
		}
		exec = simExec
	case benchfmt.EngineReal:
		if key.Cache {
			if _, err := store.EnableCachePolicy(int64(h.CacheMBPerNode)<<20, cellPolicy(h)); err != nil {
				return benchfmt.Cell{}, err
			}
			if h.CachePolicy != "" {
				wireScanHints(sched, store.HandleScanHint)
			}
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, h.SlotsPerNode))
		if h.FaultRate > 0 {
			// Real injected read faults, bounded below the retry budget
			// so recovery is guaranteed and outputs stay exact.
			inj, err := faults.New(faults.Config{
				Seed:                h.FaultSeed,
				ReadFailRate:        h.FaultRate,
				MaxInjectedPerBlock: 2,
			})
			if err != nil {
				return benchfmt.Cell{}, err
			}
			store.SetReadFault(inj.FailRead)
			if err := engine.SetRetryPolicy(mapreduce.RetryPolicy{MaxAttempts: 4}); err != nil {
				return benchfmt.Cell{}, err
			}
		}
		specs, err := wf.EngineSpecs()
		if err != nil {
			return benchfmt.Cell{}, err
		}
		engineExec = driver.NewEngineExecutor(engine, specs)
		// The timer sibling prices the same rounds the engine executes,
		// over the same store, so engine cells get the sim's
		// deterministic virtual timings (fault pricing excluded: the
		// engine already recovers its real injected faults).
		exec = &pricedExec{
			inner: engineExec,
			timer: sim.NewExecutor(sim.NewCluster(h.Nodes, h.SlotsPerNode), store, model),
		}
	default:
		return benchfmt.Cell{}, fmt.Errorf("unknown engine %q", key.Engine)
	}

	res, err := driver.RunOpts(sched, exec, arrivals, driver.Options{Pipeline: key.Pipeline})
	if err != nil {
		return benchfmt.Cell{}, err
	}
	sum, err := res.Metrics.Summarize(key.String())
	if err != nil {
		return benchfmt.Cell{}, err
	}
	rows, err := res.Metrics.JobTable()
	if err != nil {
		return benchfmt.Cell{}, err
	}
	cell := benchfmt.Cell{
		Key:           key,
		TET:           float64(sum.TET),
		ART:           float64(sum.ART),
		P95:           float64(sum.P95),
		Rounds:        res.Rounds,
		CacheHitRatio: res.Metrics.CacheStats().HitRatio(),
		FaultRetries:  res.Metrics.FaultStats().Retries,
		OutputDigest:  refDigest,
		Jobs:          make([]benchfmt.JobTiming, len(rows)),
	}
	for i, row := range rows {
		cell.Jobs[i] = benchfmt.JobTiming{
			ID:          int(row.ID),
			SubmittedAt: float64(row.SubmittedAt),
			StartedAt:   float64(row.StartedAt),
			CompletedAt: float64(row.CompletedAt),
			Response:    float64(row.Response),
		}
	}
	if engineExec != nil {
		// Engine cells earn their digest from the outputs they actually
		// produced; a scheduler that corrupted results would disagree
		// with the sim cells' reference digest and fail consensus.
		cell.OutputDigest = digestResults(engineExec.Results())
	}
	return cell, nil
}

// cellPolicy resolves the header's eviction policy; v1 files (no
// cachePolicy field) get the LRU the old schema implied.
func cellPolicy(h *workload.FileHeader) string {
	if h.CachePolicy == "" {
		return dfs.PolicyLRU
	}
	return h.CachePolicy
}

// wireScanHints connects the scheduler's circular-cursor hints to a
// cache. Only the S^3 family emits hints; for the other schemes the
// cache simply runs unhinted (lru/2q need none, and cursor degrades to
// plain LRU order).
func wireScanHints(sched scheduler.Scheduler, h core.ScanHinter) {
	if s, ok := sched.(interface{ SetScanHinter(core.ScanHinter) }); ok {
		s.SetScanHinter(h)
	}
}

// soloReferenceDigest runs every job alone, each on a fresh uncached
// fault-free store, and digests the outputs — the ground truth any
// shared/pipelined/cached execution must reproduce.
func soloReferenceDigest(wf *workload.File) (string, error) {
	h := &wf.Header
	results := make(map[scheduler.JobID]*mapreduce.Result, len(wf.Jobs))
	for i := range wf.Jobs {
		j := &wf.Jobs[i]
		store, err := dfs.NewStore(h.Nodes, h.Replicas)
		if err != nil {
			return "", err
		}
		if _, err := wf.Files[0].AddTo(store); err != nil {
			return "", err
		}
		spec, err := j.EngineSpec(wf.Files[0].Content)
		if err != nil {
			return "", err
		}
		res, err := mapreduce.NewEngine(mapreduce.MustCluster(store, h.SlotsPerNode)).RunJob(spec)
		if err != nil {
			return "", fmt.Errorf("job %d: %w", j.ID, err)
		}
		results[j.ID] = res
	}
	return digestResults(results), nil
}

// digestResults fingerprints job outputs: sha256 over jobs in id order,
// each job's sorted key/value records framed unambiguously.
func digestResults(results map[scheduler.JobID]*mapreduce.Result) string {
	ids := make([]scheduler.JobID, 0, len(results))
	for id := range results {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	hsh := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(hsh, "job %d %d\n", id, len(results[id].Output))
		for _, kv := range results[id].Output {
			fmt.Fprintf(hsh, "%d %d\n%s%s", len(kv.Key), len(kv.Value), kv.Key, kv.Value)
		}
	}
	return hex.EncodeToString(hsh.Sum(nil))
}

// pricedExec is the engine-cell executor: the inner EngineExecutor
// does the real work (scans, shuffles, reduces, caching, fault
// recovery) while the timer — a sim executor over the same store —
// supplies the round durations. The wall clock never reaches the
// scheduler, so engine runs are as deterministic as sim runs, and a
// sim cell with the same scheduler marches through the identical round
// sequence.
type pricedExec struct {
	inner *driver.EngineExecutor
	timer *sim.Executor
}

var (
	_ runtime.StageExecutor    = (*pricedExec)(nil)
	_ runtime.FailureReporter  = (*pricedExec)(nil)
	_ runtime.FaultStatsSource = (*pricedExec)(nil)
	_ runtime.CacheStatsSource = (*pricedExec)(nil)
)

// ExecRound implements runtime.Executor.
func (p *pricedExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	mapDur, stage, err := p.ExecMapStage(r)
	if err != nil {
		return 0, err
	}
	redDur, err := stage()
	if err != nil {
		return 0, err
	}
	return mapDur + redDur, nil
}

// ExecMapStage implements runtime.StageExecutor: the inner executor's
// map stage runs for real, then the timer prices the same round; the
// returned reduce stage chains the inner reduce (for outputs) with the
// timer's (for duration).
func (p *pricedExec) ExecMapStage(r scheduler.Round) (vclock.Duration, runtime.ReduceStage, error) {
	_, innerStage, err := p.inner.ExecMapStage(r)
	if err != nil {
		var lost *scheduler.RoundLostError
		if errors.As(err, &lost) {
			// Re-price the lost round's elapsed time deterministically;
			// the requeue path must not observe wall time either.
			if mapDur, _, perr := p.timer.ExecMapStage(r); perr == nil {
				lost.Elapsed = mapDur
			}
		}
		return 0, nil, err
	}
	mapDur, timerStage, err := p.timer.ExecMapStage(r)
	if err != nil {
		return 0, nil, err
	}
	stage := func() (vclock.Duration, error) {
		if _, err := innerStage(); err != nil {
			return 0, err
		}
		return timerStage()
	}
	return mapDur, stage, nil
}

// TakeJobFailures implements runtime.FailureReporter.
func (p *pricedExec) TakeJobFailures() []scheduler.JobFailure { return p.inner.TakeJobFailures() }

// FaultStats implements runtime.FaultStatsSource.
func (p *pricedExec) FaultStats() metrics.FaultStats { return p.inner.FaultStats() }

// CacheStats implements runtime.CacheStatsSource.
func (p *pricedExec) CacheStats() metrics.CacheStats { return p.inner.CacheStats() }
