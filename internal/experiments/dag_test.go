package experiments

import (
	"bytes"
	"strings"
	"testing"

	"s3sched/internal/benchfmt"
	"s3sched/internal/workload"
)

// dagWorkload is the canonical two-stage pipeline: a wordcount whose
// reduce output feeds a top-k stage, plus an unrelated concurrent
// wordcount that shares the corpus scan with stage one. The cost model
// charges materialization so the stage hand-off is visible in timings.
const dagWorkload = `{"kind":"workload","version":3,"name":"dag-test","nodes":2,"slotsPerNode":1,"replicas":1,"cost":{"scanMBps":0.01,"mapMBps":0.5,"taskOverhead":0.05,"dispatchPerJob":0.01,"roundOverhead":0.1,"jobSetup":0.2,"sharePenalty":0.02,"tagPenalty":0.05,"reducePerRound":0.05,"reduceSetup":0.05,"materializeSecPerMB":0.5}}
{"kind":"file","name":"corpus","content":"text","blocks":8,"blockBytes":4096,"segmentBlocks":2,"seed":11}
{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}
{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"3","dependsOn":[1]}
{"kind":"job","id":3,"at":1,"file":"corpus","factory":"wordcount","param":"a"}
`

func parseDAGWorkload(t *testing.T) *workload.File {
	t.Helper()
	wf, err := workload.ParseFile(strings.NewReader(dagWorkload))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if !wf.HasDAG() {
		t.Fatal("dag workload did not register as a DAG")
	}
	return wf
}

// TestRunCompareDAG is the tentpole's end-to-end proof: a
// wordcount→top-k pipeline runs through every scheduler on both
// engines, the derived stage joins the live pass mid-run, and every
// cell — sim cells pricing metadata, engine cells chewing real bytes —
// lands on one output digest.
func TestRunCompareDAG(t *testing.T) {
	wf := parseDAGWorkload(t)
	rep, err := RunCompare(wf, CompareOptions{})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	// 3 schedulers × 2 engines × 2 pipelines (no cache budget).
	if len(rep.Cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(rep.Cells))
	}
	digest, err := rep.DigestConsensus()
	if err != nil {
		t.Fatalf("DigestConsensus: %v", err)
	}
	if digest == "" {
		t.Fatal("DAG workload carries no digest")
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if len(c.Jobs) != len(wf.Jobs) {
			t.Fatalf("cell %s ran %d jobs, want %d", c.Key, len(c.Jobs), len(wf.Jobs))
		}
		var stage1, stage2 *benchfmt.JobTiming
		for j := range c.Jobs {
			switch c.Jobs[j].ID {
			case 1:
				stage1 = &c.Jobs[j]
			case 2:
				stage2 = &c.Jobs[j]
			}
		}
		if stage1 == nil || stage2 == nil {
			t.Fatalf("cell %s is missing stage rows", c.Key)
		}
		// The dependent stage cannot start before its producer finishes
		// plus a strictly positive materialization charge (the model
		// prices 0.5 s/MB and the derived file is at least one block).
		if stage2.SubmittedAt <= stage1.CompletedAt {
			t.Fatalf("cell %s released stage 2 at %v, not after stage 1 materialized (done %v)",
				c.Key, stage2.SubmittedAt, stage1.CompletedAt)
		}
	}
}

// TestRunCompareDAGDeterministic: DAG reports, like flat ones, encode
// byte-identically across runs — materialization and mid-run plan
// registration leak no wall-clock or map-order nondeterminism.
func TestRunCompareDAGDeterministic(t *testing.T) {
	encode := func() []byte {
		rep, err := RunCompare(parseDAGWorkload(t), CompareOptions{})
		if err != nil {
			t.Fatalf("RunCompare: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("two DAG runs differ:\n%s\nvs\n%s", a, b)
	}
}

// TestRunCompareDAGSharesScans: the unrelated concurrent job (id 3)
// rides the same circular pass as stage one under S3 — the cell runs
// fewer rounds than FIFO, which scans the corpus once per job.
func TestRunCompareDAGSharesScans(t *testing.T) {
	wf := parseDAGWorkload(t)
	rep, err := RunCompare(wf, CompareOptions{
		Engines: []string{benchfmt.EngineSim},
		Caches:  []bool{false},
	})
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	s3 := rep.Cell(benchfmt.CellKey{Scheduler: "s3", Engine: benchfmt.EngineSim})
	fifo := rep.Cell(benchfmt.CellKey{Scheduler: "fifo", Engine: benchfmt.EngineSim})
	if s3 == nil || fifo == nil {
		t.Fatal("missing cells")
	}
	if s3.Rounds >= fifo.Rounds {
		t.Fatalf("S3 did not share the corpus scan: s3 rounds=%d, fifo rounds=%d", s3.Rounds, fifo.Rounds)
	}
}
