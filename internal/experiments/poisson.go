package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Load-sweep study under Poisson arrivals: the paper's patterns are
// hand-built; real clusters see random independent submissions. This
// study sweeps the offered load ρ = jobTime / meanInterarrival and
// reports ART for S^3 and FIFO at each point — the queueing view of
// the shared-scan advantage. FIFO is an M/D/1-like queue whose ART
// blows up as ρ → 1; S^3 absorbs load into bigger shared batches, so
// its ART stays near one job time well past FIFO's saturation point.

// PoissonPoint is one load level's outcome.
type PoissonPoint struct {
	Rho      float64 // offered load: jobTime / mean gap
	MeanGap  vclock.Duration
	S3ART    vclock.Duration
	FIFOART  vclock.Duration
	S3TET    vclock.Duration
	FIFOTET  vclock.Duration
	ARTRatio float64 // FIFO / S3
}

// PoissonStudy sweeps the given load factors with jobs jobs per trial.
func PoissonStudy(p Params, rhos []float64, jobs int, seed int64) ([]PoissonPoint, error) {
	if len(rhos) == 0 || jobs <= 0 {
		return nil, fmt.Errorf("experiments: PoissonStudy needs load points and jobs")
	}
	// Single-job service time under the calibrated model (FIFO runs
	// the job alone).
	jobTime, err := singleJobTime(p)
	if err != nil {
		return nil, err
	}
	metas := workload.WordCountMetas(jobs, "input", 1, 1)

	var out []PoissonPoint
	for _, rho := range rhos {
		if rho <= 0 {
			return nil, fmt.Errorf("experiments: load factor %v must be positive", rho)
		}
		meanGap := vclock.Duration(jobTime.Seconds() / rho)
		times := workload.PoissonPattern(jobs, meanGap, seed)

		point := PoissonPoint{Rho: rho, MeanGap: meanGap}
		for _, scheme := range []string{"s3", "fifo"} {
			env, err := NewEnv(WordcountGB, 64, p.Model)
			if err != nil {
				return nil, err
			}
			var sched scheduler.Scheduler
			if scheme == "s3" {
				sched = core.New(env.Plan, nil)
			} else {
				sched = scheduler.NewFIFO(env.Plan, nil)
			}
			row, err := runVariant(scheme, env, sched, metas, times)
			if err != nil {
				return nil, fmt.Errorf("rho=%v %s: %w", rho, scheme, err)
			}
			if scheme == "s3" {
				point.S3ART, point.S3TET = row.ART, row.TET
			} else {
				point.FIFOART, point.FIFOTET = row.ART, row.TET
			}
		}
		point.ARTRatio = point.FIFOART.Seconds() / point.S3ART.Seconds()
		out = append(out, point)
	}
	return out, nil
}

// singleJobTime measures one normal job running alone.
func singleJobTime(p Params) (vclock.Duration, error) {
	env, err := NewEnv(WordcountGB, 64, p.Model)
	if err != nil {
		return 0, err
	}
	metas := workload.WordCountMetas(1, "input", 1, 1)
	row, err := runVariant("probe", env, core.New(env.Plan, nil), metas, []vclock.Time{0})
	if err != nil {
		return 0, err
	}
	return row.TET, nil
}
