package experiments

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Ablations quantify the design choices DESIGN.md §5 calls out:
// X1 periodic slot checking under heterogeneity (§IV-D1),
// X2 dynamic sub-job adjustment (§IV-D2),
// X3 partial-output aggregation (§V-G),
// X4 segment size = concurrent map slots (§IV-B),
// X5 the circular scan itself (§IV-B).

// AblationRow is one variant's outcome.
type AblationRow struct {
	Name   string
	TET    vclock.Duration
	ART    vclock.Duration
	Rounds int
	// Extra carries experiment-specific measurements (block scans,
	// intermediate records, …).
	Extra map[string]float64
}

// AblationResult is one ablation's full comparison.
type AblationResult struct {
	ID   string
	Note string
	Rows []AblationRow
}

// String renders the result as an aligned table.
func (a AblationResult) String() string {
	out := fmt.Sprintf("%s — %s\n", a.ID, a.Note)
	out += fmt.Sprintf("%-16s %12s %12s %8s\n", "variant", "TET", "ART", "rounds")
	for _, r := range a.Rows {
		out += fmt.Sprintf("%-16s %12s %12s %8d", r.Name, r.TET, r.ART, r.Rounds)
		for k, v := range r.Extra {
			out += fmt.Sprintf("  %s=%.0f", k, v)
		}
		out += "\n"
	}
	return out
}

// Row returns the named row.
func (a AblationResult) Row(name string) (AblationRow, bool) {
	for _, r := range a.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return AblationRow{}, false
}

// runVariant drives one scheduler over arrivals in env and summarizes.
func runVariant(name string, env *Env, sched scheduler.Scheduler, metas []scheduler.JobMeta, times []vclock.Time) (AblationRow, error) {
	arrivals := make([]driver.Arrival, len(metas))
	for i := range metas {
		arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
	}
	exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
	res, err := driver.Run(sched, exec, arrivals)
	if err != nil {
		return AblationRow{}, fmt.Errorf("experiments: ablation variant %s: %w", name, err)
	}
	sum, err := res.Metrics.Summarize(name)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   name,
		TET:    sum.TET,
		ART:    sum.ART,
		Rounds: res.Rounds,
		Extra:  map[string]float64{"blockScans": float64(exec.Stats().BlocksScanned)},
	}, nil
}

// AblationSlotChecking (X1): a straggler node at 25% speed paces every
// round of plain S^3; DynamicS3 with a slot checker excludes it and
// re-sizes segments to the healthy nodes.
func AblationSlotChecking(p Params) (AblationResult, error) {
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	straggler := 5 // arbitrary node id
	newEnv := func() (*Env, error) {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return nil, err
		}
		env.Cluster.SetSpeed(straggler, 0.25)
		return env, nil
	}

	out := AblationResult{
		ID:   "X1",
		Note: "periodic slot checking under a 0.25x straggler node (§IV-D1)",
	}

	// Variant 1: plain S3, straggler paces all rounds.
	env, err := newEnv()
	if err != nil {
		return AblationResult{}, err
	}
	row, err := runVariant("s3-nocheck", env, core.New(env.Plan, nil), metas, times)
	if err != nil {
		return AblationResult{}, err
	}
	out.Rows = append(out.Rows, row)

	// Variant 2: DynamicS3 + slot checker fed the observed speeds.
	env, err = newEnv()
	if err != nil {
		return AblationResult{}, err
	}
	checker := core.NewSlotChecker(0.5, 1.0, nil)
	for _, n := range env.Cluster.Nodes() {
		checker.Observe(dfs.NodeID(n.ID), n.Speed, 0)
	}
	all := make([]dfs.NodeID, len(env.Cluster.Nodes()))
	for i := range all {
		all[i] = dfs.NodeID(i)
	}
	dyn, err := core.NewDynamic(env.Plan.File(), all, SlotsPerNode, checker, nil)
	if err != nil {
		return AblationResult{}, err
	}
	row, err = runVariant("s3-slotcheck", env, dyn, metas, times)
	if err != nil {
		return AblationResult{}, err
	}
	out.Rows = append(out.Rows, row)
	return out, nil
}

// AblationDynAdjust (X2): S^3 with and without dynamic sub-job
// adjustment — the static variant parks arrivals until the queue
// manager drains (§IV-D2).
func AblationDynAdjust(p Params) (AblationResult, error) {
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	out := AblationResult{
		ID:   "X2",
		Note: "dynamic sub-job adjustment on/off (§IV-D2)",
	}
	for _, v := range []struct {
		name string
		mk   func(plan *dfs.SegmentPlan) scheduler.Scheduler
	}{
		{"s3-dynamic", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return core.New(plan, nil) }},
		{"s3-static", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return core.NewStatic(plan, nil) }},
	} {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return AblationResult{}, err
		}
		row, err := runVariant(v.name, env, v.mk(env.Plan), metas, times)
		if err != nil {
			return AblationResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationSegmentSize (X4): blocks per segment below, at, and above
// the cluster's concurrent map slots (§IV-B says equal is ideal).
func AblationSegmentSize(p Params) (AblationResult, error) {
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	out := AblationResult{
		ID:   "X4",
		Note: "segment size vs the ideal one-block-per-slot (§IV-B)",
	}
	for _, per := range []int{Nodes / 2, Nodes, Nodes * 2} {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return AblationResult{}, err
		}
		plan, err := dfs.PlanSegments(env.Plan.File(), per)
		if err != nil {
			return AblationResult{}, err
		}
		row, err := runVariant(fmt.Sprintf("seg-%d", per), env, core.New(plan, nil), metas, times)
		if err != nil {
			return AblationResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationCircularScan (X5): S^3 versus the restart-at-beginning
// variant that cannot admit a job mid-pass (§IV-B).
func AblationCircularScan(p Params) (AblationResult, error) {
	metas := workload.WordCountMetas(NumJobs, "input", 1, 1)
	times := p.SparsePattern()
	out := AblationResult{
		ID:   "X5",
		Note: "circular scan vs scan-from-beginning (§IV-B)",
	}
	for _, v := range []struct {
		name string
		mk   func(plan *dfs.SegmentPlan) scheduler.Scheduler
	}{
		{"s3-circular", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return core.New(plan, nil) }},
		{"s3-restart", func(plan *dfs.SegmentPlan) scheduler.Scheduler { return core.NewNoCircular(plan, nil) }},
	} {
		env, err := NewEnv(WordcountGB, 64, p.Model)
		if err != nil {
			return AblationResult{}, err
		}
		row, err := runVariant(v.name, env, v.mk(env.Plan), metas, times)
		if err != nil {
			return AblationResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationPartialAgg (X3): real-engine wordcount through S^3 with and
// without per-round partial aggregation (§V-G). The comparison is on
// carried intermediate state and reduce input volume; outputs must be
// identical.
func AblationPartialAgg() (AblationResult, error) {
	const (
		blocks    = 32
		blockSize = 4 << 10
		jobs      = 3
	)
	run := func(name string, enable bool) (AblationRow, error) {
		store := dfs.MustStore(8, 1)
		if _, err := workload.AddTextFile(store, "corpus", blocks, blockSize, 3); err != nil {
			return AblationRow{}, err
		}
		f, err := store.File("corpus")
		if err != nil {
			return AblationRow{}, err
		}
		plan, err := dfs.PlanSegments(f, 8)
		if err != nil {
			return AblationRow{}, err
		}
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
		specs := make(map[scheduler.JobID]mapreduce.JobSpec)
		var arrivals []driver.Arrival
		prefixes := workload.DistinctPrefixes(jobs)
		for i := 0; i < jobs; i++ {
			id := scheduler.JobID(i + 1)
			specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
			arrivals = append(arrivals, driver.Arrival{Job: scheduler.JobMeta{ID: id, File: "corpus"}, At: 0})
		}
		exec := driver.NewEngineExecutor(engine, specs)
		if enable {
			exec.EnablePartialAggregation(workload.SumReducer{})
		}
		res, err := driver.Run(core.New(plan, nil), exec, arrivals)
		if err != nil {
			return AblationRow{}, err
		}
		var reduceIn, outRecords int64
		for _, r := range exec.Results() {
			reduceIn += r.Counters.Get(mapreduce.CounterReduceInputRecords)
			outRecords += r.Counters.Get(mapreduce.CounterReduceOutRecords)
		}
		return AblationRow{
			Name:   name,
			Rounds: res.Rounds,
			Extra: map[string]float64{
				"reduceInputRecords": float64(reduceIn),
				"outputRecords":      float64(outRecords),
			},
		}, nil
	}
	out := AblationResult{ID: "X3", Note: "per-round partial aggregation of sub-job output (§V-G), real engine"}
	for _, v := range []struct {
		name   string
		enable bool
	}{{"no-partial-agg", false}, {"partial-agg", true}} {
		row, err := run(v.name, v.enable)
		if err != nil {
			return AblationResult{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AllAblations runs every ablation under p.
func AllAblations(p Params) ([]AblationResult, error) {
	var out []AblationResult
	for _, fn := range []func() (AblationResult, error){
		func() (AblationResult, error) { return AblationSlotChecking(p) },
		func() (AblationResult, error) { return AblationDynAdjust(p) },
		AblationPartialAgg,
		func() (AblationResult, error) { return AblationSegmentSize(p) },
		func() (AblationResult, error) { return AblationCircularScan(p) },
	} {
		res, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
