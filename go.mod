module s3sched

go 1.22
