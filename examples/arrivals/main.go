// Arrival-pattern crossover study: the paper's §III examples
// generalized into a curve. Two identical 100-second jobs; the second
// arrives at offsets from 0% to 100% of the first job's runtime. For
// each offset the program prints TET and ART under FIFO, MRShare
// (single batch) and S^3 — showing where each scheme wins and why S^3
// dominates ART at every offset.
package main

import (
	"fmt"
	"log"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
)

// runOnce builds a fresh 10-segment, 100-second-per-job environment
// and drives two jobs through the named scheme.
func runOnce(scheme string, offset vclock.Time) (tet, art float64, err error) {
	store := dfs.MustStore(1, 1)
	f, err := store.AddMetaFile("input", 10, 64<<20)
	if err != nil {
		return 0, 0, err
	}
	plan, err := dfs.PlanSegments(f, 1)
	if err != nil {
		return 0, 0, err
	}
	var sched scheduler.Scheduler
	switch scheme {
	case "fifo":
		sched = scheduler.NewFIFO(plan, nil)
	case "mrshare":
		sched, err = scheduler.NewMRShare(plan, []int{2}, nil)
		if err != nil {
			return 0, 0, err
		}
	case "s3":
		sched = core.New(plan, nil)
	default:
		return 0, 0, fmt.Errorf("unknown scheme %q", scheme)
	}
	exec := sim.NewExecutor(sim.NewCluster(1, 1), store, sim.CostModel{ScanMBps: 6.4})
	res, err := driver.Run(sched, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: offset},
	})
	if err != nil {
		return 0, 0, err
	}
	tetD, err := res.Metrics.TET()
	if err != nil {
		return 0, 0, err
	}
	artD, err := res.Metrics.ART()
	if err != nil {
		return 0, 0, err
	}
	return tetD.Seconds(), artD.Seconds(), nil
}

func main() {
	fmt.Println("two 100s jobs; J2 arrives at offset t (10s segment granularity)")
	fmt.Printf("%8s | %8s %8s | %8s %8s | %8s %8s\n",
		"offset", "fifoTET", "fifoART", "mrsTET", "mrsART", "s3TET", "s3ART")
	for off := 0; off <= 100; off += 10 {
		row := fmt.Sprintf("%7ds |", off)
		for _, scheme := range []string{"fifo", "mrshare", "s3"} {
			tet, art, err := runOnce(scheme, vclock.Time(off))
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %8.0f %8.0f", tet, art)
			if scheme != "s3" {
				row += " |"
			}
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("reading the curve:")
	fmt.Println(" - FIFO TET is always 200s: no sharing, full serialization.")
	fmt.Println(" - MRShare TET = offset+100: J1 idles until J2 arrives, then one batch.")
	fmt.Println(" - S3 TET = max(100, offset+100-shared): J2 salvages J1's remaining scan.")
	fmt.Println(" - S3 ART stays 100s at every offset: nobody ever waits.")
}
