// Wordcount workload study (paper §V-B/§V-D): ten pattern-counting
// wordcount jobs arrive in the paper's sparse pattern over the 160 GB
// corpus, and all five schedulers — S^3, FIFO, and the three MRShare
// batchings — are compared on TET and ART using the calibrated
// discrete-event simulator at full 40-node scale.
package main

import (
	"fmt"
	"log"

	"s3sched/internal/driver"
	"s3sched/internal/experiments"
	"s3sched/internal/metrics"
	"s3sched/internal/sim"
	"s3sched/internal/workload"
)

func main() {
	params := experiments.DefaultParams()
	metas := workload.WordCountMetas(experiments.NumJobs, "input", 1, 1)
	times := params.SparsePattern()

	fmt.Println("ten wordcount jobs, sparse arrivals (3 groups), 160 GB / 64 MB blocks / 40 nodes")
	fmt.Printf("arrivals: %v\n\n", times)

	var summaries []metrics.Summary
	for _, spec := range experiments.PaperSchemes() {
		env, err := experiments.NewEnv(experiments.WordcountGB, 64, params.Model)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := spec.Make(env.Plan)
		if err != nil {
			log.Fatal(err)
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
		arrivals := make([]driver.Arrival, len(metas))
		for i := range metas {
			arrivals[i] = driver.Arrival{Job: metas[i], At: times[i]}
		}
		res, err := driver.Run(sched, exec, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := res.Metrics.Summarize(spec.Name)
		if err != nil {
			log.Fatal(err)
		}
		summaries = append(summaries, sum)
		fmt.Printf("%-8s rounds=%-4d segmentScans=%-5d (FIFO re-scans everything; S^3 shares)\n",
			spec.Name, res.Rounds, exec.Stats().Rounds)
	}

	rep, err := metrics.Normalize("s3", summaries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.String())
	fmt.Println("\npaper shape: S3 best on both; FIFO ~2.2x TET / ~2.5x ART; MRShare between")
}
