// Quickstart: two wordcount jobs over one file, the second submitted
// while the first is mid-scan. S^3 splits both into per-segment
// sub-jobs, aligns them, and shares every remaining scan — this
// program shows the batching live and proves the I/O saving with the
// store's scan ledger.
package main

import (
	"fmt"
	"log"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

func main() {
	// 1. A 4-node cluster over a 16-block generated text file.
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(store, "books", 16, 8<<10, 1); err != nil {
		log.Fatal(err)
	}
	f, err := store.File("books")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Segments sized to the cluster's concurrent map slots: each
	// segment is exactly one round of cluster work.
	plan, err := dfs.PlanSegments(f, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d blocks -> %d segments of %d\n", f.NumBlocks, plan.NumSegments(), plan.BlocksPerSegment())

	// 3. Two different jobs over the same input: count words starting
	// with "t", and words starting with "a".
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	exec := driver.NewEngineExecutor(engine, map[scheduler.JobID]mapreduce.JobSpec{
		1: workload.WordCountJob("t-words", "books", "t", 2),
		2: workload.WordCountJob("a-words", "books", "a", 2),
	})
	exec.SetTimeScale(1e6) // stretch wall time so arrival 2 lands mid-run

	// 4. Drive them through S^3: job 2 arrives while job 1's first
	// sub-job is running, and still shares every later scan.
	s3 := core.New(plan, nil)
	res, err := driver.Run(s3, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "books"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "books"}, At: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The proof: far fewer physical scans than two isolated jobs.
	fmt.Printf("rounds: %d, block scans: %d (isolated jobs would scan %d)\n",
		res.Rounds, store.Stats().BlockReads, 2*f.NumBlocks)
	for id, r := range exec.Results() {
		fmt.Printf("job %d (%s): %d distinct words counted\n", id, r.Name, len(r.Output))
	}
}
