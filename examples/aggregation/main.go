// Aggregation pipeline (paper §V-G): a TPC-H Q1-style group-by-sum
// over lineitem runs through S^3 with per-round partial aggregation —
// each sub-job's partial sums are folded as rounds complete, so the
// carried state stays tiny and the final reduce starts from
// near-finished values. The aggregated result is then written back to
// the store and a second, chained job scans it.
package main

import (
	"fmt"
	"log"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

func main() {
	const (
		nodes     = 4
		blocks    = 16
		blockSize = 16 << 10
	)
	store := dfs.MustStore(nodes, 1)
	if _, err := workload.AddLineitemFile(store, "lineitem", blocks, blockSize, 11); err != nil {
		log.Fatal(err)
	}
	f, err := store.File("lineitem")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, nodes)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: Q1-style aggregation via S^3 sub-jobs with partial
	// aggregation between rounds.
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	exec := driver.NewEngineExecutor(engine, map[scheduler.JobID]mapreduce.JobSpec{
		1: workload.AggregationJob("q1", "lineitem", 2),
	})
	exec.EnablePartialAggregation(workload.SumReducer{})
	exec.SetTimeScale(1e6)

	res, err := driver.Run(core.New(plan, nil), exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "lineitem"}, At: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	q1 := exec.Results()[1]
	fmt.Printf("Q1 aggregation over %d blocks in %d sub-job rounds:\n", blocks, res.Rounds)
	for _, kv := range q1.Output {
		fmt.Printf("  returnflag|linestatus %s  sum(quantity) = %s\n", kv.Key, kv.Value)
	}
	fmt.Printf("reduce input records: %d (partial aggregation folds each round; without it this equals every matching row)\n\n",
		q1.Counters.Get(mapreduce.CounterReduceInputRecords))

	// Stage 2: chain a job over the stored aggregation output.
	if _, err := mapreduce.StoreResult(store, "q1-out", 4<<10, q1); err != nil {
		log.Fatal(err)
	}
	filter := mapreduce.JobSpec{
		Name: "groups-over-threshold",
		File: "q1-out",
		Mapper: mapreduce.KVLineMapper{Each: func(key, value string, emit mapreduce.Emit) error {
			emit(mapreduce.KV{Key: key, Value: value})
			return nil
		}},
	}
	chained, err := engine.RunJob(filter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chained job re-read %d group rows from the stored output\n", len(chained.Output))
}
