// Selection workload (paper §V-G): SQL-like selection jobs over a
// generated TPC-H lineitem table, executed on the real MapReduce
// engine through S^3. Each job selects rows below a different
// l_quantity threshold — the paper's "SELECT * FROM lineitem WHERE
// l_quantity < VAL" with VAL chosen for ~10% selectivity.
package main

import (
	"fmt"
	"log"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

func main() {
	const (
		nodes     = 4
		blocks    = 24
		blockSize = 32 << 10
	)
	store := dfs.MustStore(nodes, 1)
	if _, err := workload.AddLineitemFile(store, "lineitem", blocks, blockSize, 7); err != nil {
		log.Fatal(err)
	}
	f, err := store.File("lineitem")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, nodes)
	if err != nil {
		log.Fatal(err)
	}

	// Three selection jobs with different predicates: ~10%, ~20% and
	// ~50% selectivity over the uniform 1..50 quantity domain.
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	exec := driver.NewEngineExecutor(engine, map[scheduler.JobID]mapreduce.JobSpec{
		1: workload.SelectionJob("qty<=5", "lineitem", 5),
		2: workload.SelectionJob("qty<=10", "lineitem", 10),
		3: workload.SelectionJob("qty<=25", "lineitem", 25),
	})
	exec.SetTimeScale(1e6)

	s3 := core.New(plan, nil)
	res, err := driver.Run(s3, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "lineitem"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "lineitem"}, At: 1},
		{Job: scheduler.JobMeta{ID: 3, File: "lineitem"}, At: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lineitem: %d blocks x %d KiB; %d segments\n", blocks, blockSize>>10, plan.NumSegments())
	fmt.Printf("3 selection jobs via S^3: %d rounds, %d block scans (isolated: %d)\n\n",
		res.Rounds, store.Stats().BlockReads, 3*blocks)

	for id := scheduler.JobID(1); id <= 3; id++ {
		r := exec.Results()[id]
		in := r.Counters.Get(mapreduce.CounterMapInputRecords)
		out := int64(len(r.Output))
		fmt.Printf("%-9s selected %6d of %6d rows (%.1f%% selectivity)\n",
			r.Name, out, in, 100*float64(out)/float64(in))
	}
	fmt.Println("\nevery selected row satisfies its predicate; outputs are sorted by (orderkey, linenumber)")
}
