// Multi-process crash-recovery test: a real master process is
// SIGKILLed mid-pass and restarted on the same journal, and every job
// admitted before the crash must still complete — with output
// byte-identical to an uninterrupted run.
//
// The master runs as a subprocess (re-executing this test binary with
// S3CLUSTER_HELPER=master, the standard helper-process trick) so the
// kill is a genuine process death: no deferred cleanup, no flushes,
// nothing but what the journal already fsynced (or, here with
// -fsync=never, what the OS already has — SIGKILL does not lose OS
// buffers). Workers live in the test process; their reconnect-forever
// control loops carry them across the master restart exactly as a real
// deployment's would.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"s3sched/internal/comms"
	"s3sched/internal/dfs"
	"s3sched/internal/remote"
	"s3sched/internal/workload"
)

// Crash-test corpus: big enough that one circular pass is ~24 rounds,
// so the kill reliably lands mid-pass.
const (
	crashBlocks    = 48
	crashBlockSize = 32 << 10
	crashSeed      = 31
)

func TestMain(m *testing.M) {
	if os.Getenv("S3CLUSTER_HELPER") == "master" {
		if err := helperMaster(); err != nil {
			fmt.Fprintln(os.Stderr, "helper master:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// helperMaster runs the real daemon entry point with configuration
// from the environment (the helper process never calls flag.Parse, so
// the globals are set directly).
func helperMaster() error {
	*role = "master"
	*serve = true
	*ctrlAddr = os.Getenv("S3CLUSTER_CTRL")
	*statAddr = os.Getenv("S3CLUSTER_STATUS")
	*journalPath = os.Getenv("S3CLUSTER_JOURNAL")
	*traceJSON = os.Getenv("S3CLUSTER_TRACE")
	*fsyncMode = "never"
	*jobs = 0
	*blocks = crashBlocks
	*blockSize = crashBlockSize
	*seed = crashSeed
	*minWorkers = 2
	*hb = 100 * time.Millisecond
	return runMaster()
}

// masterProc is one spawned master incarnation.
type masterProc struct {
	cmd *exec.Cmd
	log string
}

func spawnMaster(t *testing.T, name, ctrl, status, journal, traceFile string) *masterProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	logPath := filepath.Join(t.TempDir(), name+".log")
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("creating %s: %v", logPath, err)
	}
	cmd := exec.Command(exe)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.Env = append(os.Environ(),
		"S3CLUSTER_HELPER=master",
		"S3CLUSTER_CTRL="+ctrl,
		"S3CLUSTER_STATUS="+status,
		"S3CLUSTER_JOURNAL="+journal,
		"S3CLUSTER_TRACE="+traceFile,
	)
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatalf("starting %s: %v", name, err)
	}
	logf.Close() // the child holds its own descriptor
	mp := &masterProc{cmd: cmd, log: logPath}
	t.Cleanup(func() {
		if mp.cmd.ProcessState == nil {
			mp.cmd.Process.Kill()
			mp.cmd.Wait()
		}
		if t.Failed() {
			if out, err := os.ReadFile(logPath); err == nil && len(out) > 0 {
				t.Logf("--- %s output ---\n%s", name, out)
			}
		}
	})
	return mp
}

// wait reaps the process, returning its exit error.
func (m *masterProc) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- m.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		m.cmd.Process.Kill()
		t.Fatalf("master did not exit within %v", timeout)
		return nil
	}
}

// startCrashWorker serves the crash-test corpus in-process and
// registers with the master's control plane on an aggressive reconnect
// schedule, so it rejoins a restarted master within tens of ms.
func startCrashWorker(t *testing.T, ctrl, id string) *remote.Worker {
	t.Helper()
	store, err := dfs.NewStore(1, 1)
	if err != nil {
		t.Fatalf("worker store: %v", err)
	}
	if _, err := workload.AddTextFile(store, "corpus", crashBlocks, crashBlockSize, crashSeed); err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if _, err := workload.AddLineitemFile(store, "lineitem", crashBlocks, crashBlockSize, crashSeed); err != nil {
		t.Fatalf("lineitem: %v", err)
	}
	w := remote.NewWorker(store, remote.NewStandardRegistry())
	if _, err := w.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("worker serve: %v", err)
	}
	opts := remote.RegisterOptions{
		ID:        id,
		Heartbeat: 100 * time.Millisecond,
		Backoff:   comms.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	}
	if err := w.Register(ctrl, opts); err != nil {
		w.Close()
		t.Fatalf("worker register: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// pickAddr reserves an ephemeral port and releases it for the
// subprocess to bind. The small reuse race is acceptable in a test.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("picking port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// statusSnapshot is the slice of /status.json this test reads.
type statusSnapshot struct {
	Rounds      int `json:"rounds"`
	PendingJobs int `json:"pendingJobs"`
	DoneJobs    int `json:"doneJobs"`
	Recovery    *struct {
		Recoveries    int `json:"recoveries"`
		JobsResumed   int `json:"jobsResumed"`
		JobsRestarted int `json:"jobsRestarted"`
	} `json:"recovery"`
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// waitStatus polls /status.json until cond holds or the deadline hits.
func waitStatus(t *testing.T, base string, timeout time.Duration, what string, cond func(statusSnapshot) bool) statusSnapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last statusSnapshot
	var lastErr error
	for time.Now().Before(deadline) {
		var st statusSnapshot
		if err := getJSON(base+"/status.json", &st); err != nil {
			lastErr = err
		} else {
			last, lastErr = st, nil
			if cond(st) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (last %+v, err %v)", what, last, lastErr)
	return last
}

func postJob(t *testing.T, base, factory, param string) int {
	t.Helper()
	body := fmt.Sprintf(`{"factory":%q,"param":%q}`, factory, param)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %s: %s", resp.Status, out)
	}
	var reply struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("decoding submit reply: %v", err)
	}
	return reply.ID
}

// jobOutputs fetches every job's merged output as raw JSON bytes.
func jobOutputs(t *testing.T, base string, ids []int) map[int][]byte {
	t.Helper()
	out := make(map[int][]byte, len(ids))
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/output", base, id))
		if err != nil {
			t.Fatalf("GET /jobs/%d/output: %v", id, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%d/output: %s: %s", id, resp.Status, body)
		}
		out[id] = body
	}
	return out
}

// jobStates decodes GET /jobs into id→state.
func jobStates(t *testing.T, base string) map[int]string {
	t.Helper()
	var jobs []struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := getJSON(base+"/jobs", &jobs); err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	out := make(map[int]string, len(jobs))
	for _, j := range jobs {
		out[j.ID] = j.State
	}
	return out
}

// submitCrashJobs submits n distinct wordcount jobs and returns their
// assigned ids in submission order.
func submitCrashJobs(t *testing.T, base string, n int) []int {
	t.Helper()
	prefixes := workload.DistinctPrefixes(n)
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, postJob(t, base, "wordcount", prefixes[i]))
	}
	return ids
}

func waitJobsDone(t *testing.T, base string, ids []int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		states := jobStates(t, base)
		done := 0
		for _, id := range ids {
			if states[id] == "done" {
				done++
			}
		}
		if done == len(ids) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d job(s) to complete (states %v)", len(ids), jobStates(t, base))
}

func TestMasterCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test")
	}
	dir := t.TempDir()
	const numJobs = 6

	// --- incarnation 1: killed mid-pass -------------------------------
	ctrl, statusAddr := pickAddr(t), pickAddr(t)
	journalPath := filepath.Join(dir, "journal.wal")
	tracePath := filepath.Join(dir, "trace.json")
	base := "http://" + statusAddr

	m1 := spawnMaster(t, "master1", ctrl, statusAddr, journalPath, "")
	startCrashWorker(t, ctrl, "worker-a")
	startCrashWorker(t, ctrl, "worker-b")
	waitStatus(t, base, 30*time.Second, "master1 up", func(statusSnapshot) bool { return true })

	ids := submitCrashJobs(t, base, numJobs)
	// One pass over the corpus is crashBlocks/2 = 24 rounds; by round 3
	// every job is still mid-flight.
	waitStatus(t, base, 30*time.Second, "rounds to accumulate", func(st statusSnapshot) bool {
		return st.Rounds >= 3
	})
	if err := m1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL master1: %v", err)
	}
	_ = m1.cmd.Wait() // reap; exit status is meaningless after SIGKILL

	// --- incarnation 2: same journal, same addresses ------------------
	m2 := spawnMaster(t, "master2", ctrl, statusAddr, journalPath, tracePath)
	waitStatus(t, base, 30*time.Second, "master2 recovery", func(st statusSnapshot) bool {
		return st.Recovery != nil
	})
	waitJobsDone(t, base, ids, 60*time.Second)

	st := waitStatus(t, base, 5*time.Second, "recovery visible", func(st statusSnapshot) bool {
		return st.Recovery != nil && st.Recovery.Recoveries >= 1
	})
	if st.Recovery.JobsResumed+st.Recovery.JobsRestarted == 0 {
		t.Errorf("recovery carried no jobs: %+v", st.Recovery)
	}
	got := jobOutputs(t, base, ids)

	// --- reference: uninterrupted run on a fresh journal --------------
	refCtrl, refStatus := pickAddr(t), pickAddr(t)
	refBase := "http://" + refStatus
	ref := spawnMaster(t, "reference", refCtrl, refStatus, filepath.Join(dir, "ref.wal"), "")
	startCrashWorker(t, refCtrl, "ref-worker-a")
	startCrashWorker(t, refCtrl, "ref-worker-b")
	waitStatus(t, refBase, 30*time.Second, "reference up", func(statusSnapshot) bool { return true })
	refIDs := submitCrashJobs(t, refBase, numJobs)
	waitJobsDone(t, refBase, refIDs, 60*time.Second)
	want := jobOutputs(t, refBase, refIDs)

	for i, id := range ids {
		if !bytes.Equal(got[id], want[refIDs[i]]) {
			t.Errorf("job %d: output diverges from uninterrupted run (%d vs %d bytes)",
				id, len(got[id]), len(want[refIDs[i]]))
		}
	}

	// --- graceful shutdown + trace assertion --------------------------
	// SIGINT drains both daemons; master2 writes its trace on the way
	// out, which must record the recovery event.
	if err := ref.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("SIGINT reference: %v", err)
	}
	_ = ref.wait(t, 30*time.Second)
	if err := m2.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("SIGINT master2: %v", err)
	}
	if err := m2.wait(t, 30*time.Second); err != nil {
		t.Fatalf("master2 exited uncleanly: %v", err)
	}
	traceOut, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if !bytes.Contains(traceOut, []byte("journal-recovered")) {
		t.Error("exported trace lacks the journal-recovered event")
	}
}

// TestSigtermCheckpointResume covers the graceful path: SIGTERM makes
// the daemon checkpoint at a round boundary and exit; a restart on the
// same journal resumes and finishes the pending jobs.
func TestSigtermCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process checkpoint test")
	}
	dir := t.TempDir()
	ctrl, statusAddr := pickAddr(t), pickAddr(t)
	journalPath := filepath.Join(dir, "journal.wal")
	base := "http://" + statusAddr

	m1 := spawnMaster(t, "master1", ctrl, statusAddr, journalPath, "")
	startCrashWorker(t, ctrl, "worker-a")
	startCrashWorker(t, ctrl, "worker-b")
	waitStatus(t, base, 30*time.Second, "master1 up", func(statusSnapshot) bool { return true })

	ids := submitCrashJobs(t, base, 4)
	waitStatus(t, base, 30*time.Second, "rounds to accumulate", func(st statusSnapshot) bool {
		return st.Rounds >= 2
	})
	if err := m1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM master1: %v", err)
	}
	if err := m1.wait(t, 30*time.Second); err != nil {
		t.Fatalf("master1 exited uncleanly after SIGTERM: %v", err)
	}
	logOut, err := os.ReadFile(m1.log)
	if err != nil {
		t.Fatalf("reading master1 log: %v", err)
	}
	if !bytes.Contains(logOut, []byte("checkpoint written")) {
		t.Fatalf("master1 wrote no checkpoint; log:\n%s", logOut)
	}

	m2 := spawnMaster(t, "master2", ctrl, statusAddr, journalPath, "")
	waitStatus(t, base, 30*time.Second, "master2 recovery", func(st statusSnapshot) bool {
		return st.Recovery != nil
	})
	waitJobsDone(t, base, ids, 60*time.Second)

	if err := m2.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("SIGINT master2: %v", err)
	}
	_ = m2.wait(t, 30*time.Second)
}
