// Journal recovery glue: turns a replayed write-ahead journal back
// into live daemon state. The split of responsibilities mirrors the
// write path — the admission layer journals admissions, the master
// journals shuffle/result state, the engine journals round commits —
// so recovery walks the folded MasterState and hands each piece back
// to the layer that wrote it.
package main

import (
	"fmt"
	"os"

	"s3sched/internal/journal"
	"s3sched/internal/pipeline"
	"s3sched/internal/remote"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// journalCommits adapts the engine's CommitLog to journal records. The
// engine calls it synchronously at each commit point, so by the time a
// round's effects are observable the journal already holds them.
type journalCommits struct {
	j *journal.Journal
}

func (c *journalCommits) RoundCommitted(r scheduler.Round, now vclock.Time, snap *scheduler.Snapshot, requeues int) {
	c.append(journal.KindRoundCommitted, journal.RoundCommittedRecord{
		Segment:  r.Segment,
		Jobs:     r.JobIDs(),
		At:       now,
		Requeues: requeues,
		Snapshot: snap,
	})
}

func (c *journalCommits) JobDone(id scheduler.JobID, now vclock.Time) {
	c.append(journal.KindJobDone, journal.JobEndRecord{Job: id, At: now})
}

func (c *journalCommits) JobFailed(id scheduler.JobID, now vclock.Time) {
	c.append(journal.KindJobFailed, journal.JobEndRecord{Job: id, At: now})
}

func (c *journalCommits) append(kind string, payload any) {
	if err := c.j.AppendRecord(kind, payload); err != nil {
		// Progress records refine recovery (resume mid-pass instead of
		// rerunning from admission); losing one degrades granularity but
		// never correctness, so a failed append must not kill the run.
		fmt.Fprintf(os.Stderr, "s3cluster: journal append %s: %v\n", kind, err)
	}
}

// recoveryReport summarizes what recoverFromJournal did.
type recoveryReport struct {
	// resumed jobs were restored mid-pass from the scheduler snapshot;
	// restarted jobs were resubmitted from their admission records;
	// settled jobs only had their terminal status re-published.
	resumed, restarted, settled int
	state                       *journal.MasterState
}

// recoverFromJournal folds the replayed entries and rebuilds daemon
// state: settled jobs get their status (and restored results) back,
// snapshotted jobs resume mid-pass with their committed shuffle state,
// and admitted-but-unsnapshotted jobs are resubmitted under their
// original ids — with their recorded dependencies, so a half-finished
// DAG re-forms: done producers seed the DAG's done set, waiting
// consumers hold again, and stage-materialized records re-install the
// derived files before the engine starts (remat rebuilds one; it must
// run before RestoreState, which needs every snapshot queue's file
// registered). Mutates opts (Restored, InitialRequeues) and appends a
// recovered record marking the journal as once-more-recovered.
func recoverFromJournal(
	jnl *journal.Journal,
	entries []journal.Entry,
	sched scheduler.Scheduler,
	master *remote.Master,
	src *runtime.LiveSource,
	dag *pipeline.LiveDAG,
	adm *clusterAdmission,
	remat func(scheduler.JobID) error,
	opts *runtime.Options,
) (*recoveryReport, error) {
	st, err := journal.ReduceEntries(entries)
	if err != nil {
		return nil, err
	}
	rep := &recoveryReport{state: st}

	// resume collects the ids restored into the scheduler; the snapshot
	// is pruned to exactly this set before RestoreState, because the
	// snapshot may also carry jobs that settled after it was taken
	// (result committed, crash before the round-committed record) or
	// jobs this binary can no longer run.
	resume := make(map[scheduler.JobID]bool)

	for _, id := range st.Order {
		rec := st.Admitted[id]
		meta := rec.Meta
		meta.ID = id
		ref := remote.JobRef{Name: rec.Name, Factory: rec.Factory, Param: rec.Param, NumReduce: rec.NumReduce}

		if end, done := st.Done[id]; done {
			// Settled and succeeded: republish the result so
			// GET /jobs/<id>/output keeps serving across restarts.
			if err := master.RegisterJob(id, ref); err != nil {
				return nil, err
			}
			if out, ok := st.Results[id]; ok {
				master.RestoreResult(id, out)
			}
			if err := src.Adopt(meta, runtime.JobDone, 0, end.At); err != nil {
				return nil, err
			}
			dag.AdoptDone(id, false)
			// A stage-materialized record means dependents scan this job's
			// output: rebuild the derived file now (from the restored
			// result), before any consumer is resubmitted and before
			// RestoreState needs its queue registered. Walking st.Order
			// keeps the registration order deterministic.
			if _, wasMat := st.Materialized[id]; wasMat {
				if err := remat(id); err != nil {
					return nil, fmt.Errorf("re-materializing job %d output: %w", id, err)
				}
				dag.AdoptMaterialized(id)
			}
			adm.adopt(id, ref)
			rep.settled++
			continue
		}
		if _, hasResult := st.Results[id]; hasResult {
			// The result committed but the crash beat the job-done
			// record. The job is finished in every way that matters:
			// adopt it as done rather than re-running a completed job.
			if err := master.RegisterJob(id, ref); err != nil {
				return nil, err
			}
			master.RestoreResult(id, st.Results[id])
			if err := src.Adopt(meta, runtime.JobDone, 0, 0); err != nil {
				return nil, err
			}
			dag.AdoptDone(id, false)
			if _, wasMat := st.Materialized[id]; wasMat {
				if err := remat(id); err != nil {
					return nil, fmt.Errorf("re-materializing job %d output: %w", id, err)
				}
				dag.AdoptMaterialized(id)
			}
			adm.adopt(id, ref)
			rep.settled++
			continue
		}
		if end, failed := st.Failed[id]; failed {
			if err := src.Adopt(meta, runtime.JobFailed, 0, end.At); err != nil {
				return nil, err
			}
			dag.AdoptDone(id, true)
			adm.adopt(id, ref)
			rep.settled++
			continue
		}
		if !adm.factories[rec.Factory] {
			// The binary that wrote the journal knew this factory; this
			// one does not. Rerunning is impossible, so surface the job
			// as failed instead of wedging the pass.
			fmt.Fprintf(os.Stderr, "s3cluster: recovery: job %d uses unknown factory %q; marking failed\n", id, rec.Factory)
			if err := src.Adopt(meta, runtime.JobFailed, 0, 0); err != nil {
				return nil, err
			}
			dag.AdoptDone(id, true)
			adm.adopt(id, ref)
			continue
		}
		if st.InSnapshot(id) {
			// Mid-pass resume: the scheduler snapshot knows the job's
			// cursor, the shuffle records know its committed map output.
			if err := master.RegisterJob(id, ref); err != nil {
				return nil, err
			}
			for seg, parts := range st.Shuffle[id] {
				if err := master.RestoreShuffle(id, seg, parts); err != nil {
					return nil, err
				}
			}
			if err := src.Adopt(meta, runtime.JobRunning, 0, 0); err != nil {
				return nil, err
			}
			adm.adopt(id, ref)
			opts.Restored = append(opts.Restored, runtime.RestoredJob{ID: id})
			resume[id] = true
			rep.resumed++
			continue
		}
		// A cascade-failed consumer leaves no job-failed record (FailHeld
		// is a status transition, not a round commit), so re-derive the
		// verdict: any failed dependency fails this stage again.
		depFailed := false
		for _, dep := range rec.DependsOn {
			if ds, ok := src.Status(dep); ok && ds.State == runtime.JobFailed {
				depFailed = true
				break
			}
		}
		if depFailed {
			if err := src.Adopt(meta, runtime.JobFailed, 0, 0); err != nil {
				return nil, err
			}
			dag.AdoptDone(id, true)
			adm.adopt(id, ref)
			rep.settled++
			continue
		}
		// Admitted but never snapshotted (or the snapshot predates it):
		// resubmit through the normal admission path under the original
		// id, with its recorded dependencies — a consumer whose producer
		// is still pending holds again, one whose producer settled is
		// released exactly as a live submission would be. That
		// re-journals the admission, which is harmless — the fold is
		// last-writer-wins per id.
		if _, err := adm.submitStage(meta, ref, rec.DependsOn); err != nil {
			return nil, err
		}
		rep.restarted++
	}

	if len(resume) > 0 {
		sn, ok := sched.(scheduler.Snapshottable)
		if !ok {
			return nil, fmt.Errorf("scheduler %s cannot restore a snapshot", sched.Name())
		}
		if err := sn.RestoreState(pruneSnapshot(*st.Snapshot, resume)); err != nil {
			return nil, err
		}
		opts.InitialRequeues = st.Requeues
	}

	if err := jnl.AppendRecord(journal.KindRecovered, journal.RecoveredRecord{
		Resumed:   rep.resumed,
		Restarted: rep.restarted,
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// pruneSnapshot filters a scheduler snapshot down to the jobs actually
// being resumed. Queues and cursors survive untouched — only job
// entries not in keep are dropped.
func pruneSnapshot(snap scheduler.Snapshot, keep map[scheduler.JobID]bool) scheduler.Snapshot {
	queues := make([]scheduler.QueueSnapshot, len(snap.Queues))
	for i, q := range snap.Queues {
		pq := q
		pq.Jobs = nil
		for _, js := range q.Jobs {
			if keep[js.Meta.ID] {
				pq.Jobs = append(pq.Jobs, js)
			}
		}
		queues[i] = pq
	}
	snap.Queues = queues
	return snap
}
