// Command s3cluster runs the distributed execution substrate: workers
// serving map/reduce tasks over TCP, and a master driving them through
// the S^3 scheduler. Three roles:
//
//	s3cluster -role demo                 # everything in one process
//	s3cluster -role worker -listen 127.0.0.1:7001
//	s3cluster -role master -workers 127.0.0.1:7001,127.0.0.1:7002
//
// Workers generate their corpus locally from the shared seed — the
// distributed analogue of HDFS data locality: block bytes never cross
// the network, only task descriptions and intermediate records.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/metrics"
	"s3sched/internal/remote"
	"s3sched/internal/scheduler"
	"s3sched/internal/status"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

var (
	role      = flag.String("role", "demo", "demo | worker | master")
	listen    = flag.String("listen", "127.0.0.1:0", "worker: address to serve on")
	workerStr = flag.String("workers", "", "master: comma-separated worker addresses")
	blocks    = flag.Int("blocks", 24, "corpus blocks (must match across the cluster)")
	blockSize = flag.Int64("blocksize", 16<<10, "corpus block size in bytes")
	seed      = flag.Int64("seed", 7, "corpus generator seed (must match across the cluster)")
	jobs      = flag.Int("jobs", 3, "master/demo: number of wordcount jobs")
	demoN     = flag.Int("nodes", 3, "demo: in-process worker count")
	statAddr  = flag.String("status", "", "master/demo: serve a live status dashboard, Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
	traceJSON = flag.String("tracejson", "", "master/demo: write the run's span tree as Chrome trace-event JSON to this file")
	cacheMB   = flag.Int64("cachemb", 0, "worker/demo: per-worker block-cache budget in MB (0 = caching off)")
)

func main() {
	flag.Parse()
	var err error
	switch *role {
	case "worker":
		err = runWorker()
	case "master":
		err = runMaster(strings.Split(*workerStr, ","))
	case "demo":
		err = runDemo()
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "s3cluster:", err)
		os.Exit(1)
	}
}

func workerStore() (*dfs.Store, error) {
	store, err := dfs.NewStore(1, 1)
	if err != nil {
		return nil, err
	}
	if _, err := workload.AddTextFile(store, "corpus", *blocks, *blockSize, *seed); err != nil {
		return nil, err
	}
	if *cacheMB > 0 {
		if _, err := store.EnableCache(*cacheMB << 20); err != nil {
			return nil, err
		}
	}
	return store, nil
}

func runWorker() error {
	store, err := workerStore()
	if err != nil {
		return err
	}
	w := remote.NewWorker(store, remote.NewStandardRegistry())
	addr, err := w.Serve(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("worker serving corpus (%d x %d B, seed %d) on %s\n", *blocks, *blockSize, *seed, addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return w.Close()
}

func jobRefs(n int) map[scheduler.JobID]remote.JobRef {
	refs := make(map[scheduler.JobID]remote.JobRef, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		refs[scheduler.JobID(i+1)] = remote.JobRef{
			Name:      fmt.Sprintf("wordcount-%s", prefixes[i]),
			Factory:   "wordcount",
			Param:     prefixes[i],
			NumReduce: 2,
		}
	}
	return refs
}

func runMaster(addrs []string) error {
	if len(addrs) == 0 || addrs[0] == "" {
		return fmt.Errorf("master needs -workers")
	}
	refs := jobRefs(*jobs)
	master, err := remote.Dial(addrs, refs)
	if err != nil {
		return err
	}
	defer master.Close()
	return drive(master, len(addrs), refs)
}

func runDemo() error {
	reg := remote.NewStandardRegistry()
	var addrs []string
	var workers []*remote.Worker
	for i := 0; i < *demoN; i++ {
		store, err := workerStore()
		if err != nil {
			return err
		}
		w := remote.NewWorker(store, reg)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	fmt.Printf("demo: %d in-process workers on %v\n", *demoN, addrs)
	refs := jobRefs(*jobs)
	master, err := remote.Dial(addrs, refs)
	if err != nil {
		return err
	}
	defer master.Close()
	return drive(master, *demoN, refs)
}

func drive(master *remote.Master, numWorkers int, refs map[scheduler.JobID]remote.JobRef) error {
	master.SetTimeScale(1e6)

	// The scheduler's segment plan: metadata only, matching the
	// workers' corpus shape.
	planStore, err := dfs.NewStore(numWorkers, 1)
	if err != nil {
		return fmt.Errorf("planning store for %d workers: %w", numWorkers, err)
	}
	f, err := planStore.AddMetaFile("corpus", *blocks, *blockSize)
	if err != nil {
		return err
	}
	plan, err := dfs.PlanSegments(f, numWorkers)
	if err != nil {
		return err
	}

	var arrivals []driver.Arrival
	for id := range refs {
		arrivals = append(arrivals, driver.Arrival{
			Job: scheduler.JobMeta{ID: id, File: "corpus"},
			At:  vclock.Time(id - 1),
		})
	}
	var opts driver.Options
	var spans *trace.Log
	if *traceJSON != "" {
		spans, err = trace.New(1 << 16)
		if err != nil {
			return err
		}
		opts.Spans = spans
		master.SetTrace(spans)
	}
	// The scheduler shares the span log so JQM job-lifetime spans land
	// in the same trace as the driver's round/stage spans.
	sched := core.New(plan, spans)
	reg := metrics.NewRegistry()
	opts.Metrics = metrics.NewRunMetrics(reg)
	var srv *status.Server
	if *statAddr != "" {
		srv = status.NewServer(sched.Name())
		srv.SetRegistry(reg)
		addr, err := srv.Serve(*statAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("status dashboard: http://%s/ (also /metrics, /debug/pprof/)\n", addr)
		opts.Hooks = srv.Hooks(sched)
	}
	res, err := driver.RunOpts(sched, master, arrivals, opts)
	if err != nil {
		return err
	}
	if spans != nil {
		out, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := spans.WriteChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *traceJSON)
	}
	if srv != nil {
		tet, tErr := res.Metrics.TET()
		art, aErr := res.Metrics.ART()
		srv.Update(func(st *status.State) {
			st.RunComplete = true
			if tErr == nil {
				st.TETSeconds = tet.Seconds()
			}
			if aErr == nil {
				st.ARTSeconds = art.Seconds()
			}
		})
	}
	fmt.Printf("completed %d jobs in %d rounds\n", res.Metrics.Jobs(), res.Rounds)

	stats, err := master.WorkerStats()
	if err != nil {
		return err
	}
	var reads int64
	var cache metrics.CacheStats
	for i, st := range stats {
		fmt.Printf("worker %d: %d block reads, %d map tasks, %d reduce tasks", i, st.BlockReads, st.MapTasks, st.ReduceTasks)
		if st.CacheHits+st.CacheMisses > 0 {
			fmt.Printf(", %d cache hits / %d misses", st.CacheHits, st.CacheMisses)
		}
		fmt.Println()
		reads += st.BlockReads
		cache.Add(metrics.CacheStats{Hits: st.CacheHits, Misses: st.CacheMisses})
	}
	fmt.Printf("cluster block reads: %d (isolated jobs would need %d)\n", reads, int64(*jobs)*int64(*blocks))
	if cache.Hits+cache.Misses > 0 {
		fmt.Printf("cluster block cache: %d hits / %d misses (%.1f%% hit ratio)\n", cache.Hits, cache.Misses, 100*cache.HitRatio())
	}
	if srv != nil && cache.Hits+cache.Misses > 0 {
		srv.SetCache(cache)
	}
	for id, out := range master.Results() {
		fmt.Printf("job %d (%s): %d output keys\n", id, refs[id].Name, len(out))
	}
	return nil
}
