// Command s3cluster runs the distributed execution substrate: workers
// serving map/reduce tasks over TCP, and a master driving them through
// the S^3 scheduler. Three roles:
//
//	s3cluster -role demo                 # everything in one process
//	s3cluster -role master -control 127.0.0.1:7000 -minworkers 2
//	s3cluster -role worker -master 127.0.0.1:7000
//
// In this registration mode (the default deployment topology) workers
// dial the master's control address, register with their identity and
// block inventory, and heartbeat; a worker killed and restarted
// re-registers and rejoins the run in flight, while the master requeues
// whatever rounds its death interrupted. The legacy static topology —
// the master dialing a fixed worker list — remains available:
//
//	s3cluster -role worker -listen 127.0.0.1:7001
//	s3cluster -role master -workers 127.0.0.1:7001,127.0.0.1:7002
//
// With -serve, the master (or demo) stays up as a daemon after its
// initial jobs finish and accepts live submissions over HTTP:
//
//	s3cluster -role demo -serve -status 127.0.0.1:8080
//	curl -d '{"factory":"wordcount","param":"th"}' http://127.0.0.1:8080/jobs
//	curl http://127.0.0.1:8080/jobs/4
//
// Live jobs join the scheduler's current circular pass at the next
// round boundary, sharing scans with whatever is already running.
// Interrupt (SIGINT) closes admission and drains in-flight jobs.
//
// Workers generate their corpus locally from the shared seed — the
// distributed analogue of HDFS data locality: block bytes never cross
// the network, only task descriptions and intermediate records.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/journal"
	"s3sched/internal/metrics"
	"s3sched/internal/pipeline"
	"s3sched/internal/remote"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/status"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

var (
	role         = flag.String("role", "demo", "demo | worker | master")
	listen       = flag.String("listen", "127.0.0.1:0", "worker: address to serve tasks on")
	workerStr    = flag.String("workers", "", "master: comma-separated worker addresses (legacy static topology)")
	masterAddr   = flag.String("master", "", "worker: master control address to register with (registration mode)")
	workerID     = flag.String("id", "", "worker: stable identity for registration (default worker@<task address>)")
	ctrlAddr     = flag.String("control", "", "master: control-plane listen address for worker registration (dynamic membership mode)")
	minWorkers   = flag.Int("minworkers", 1, "master: registered workers to wait for before driving rounds")
	hb           = flag.Duration("hb", remote.DefaultHeartbeat, "worker: heartbeat interval; master: expected worker heartbeat interval (suspect/dead deadlines scale from it)")
	blocks       = flag.Int("blocks", 24, "corpus blocks (must match across the cluster)")
	blockSize    = flag.Int64("blocksize", 16<<10, "corpus block size in bytes")
	seed         = flag.Int64("seed", 7, "corpus generator seed (must match across the cluster)")
	jobs         = flag.Int("jobs", 3, "master/demo: number of initial wordcount jobs")
	demoN        = flag.Int("nodes", 3, "demo: in-process worker count")
	statAddr     = flag.String("status", "", "master/demo: serve a live status dashboard, Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
	traceJSON    = flag.String("tracejson", "", "master/demo: write the run's span tree as Chrome trace-event JSON to this file")
	cacheMB      = flag.Int64("cachemb", 0, "worker/demo: per-worker block-cache budget in MB (0 = caching off)")
	cachePolicy  = flag.String("cachepolicy", dfs.PolicyLRU, "worker/demo: block-cache eviction policy: lru | 2q | cursor")
	serve        = flag.Bool("serve", false, "master/demo: stay up as a daemon accepting live job submissions via POST /jobs on the status address; SIGINT drains and exits")
	journalPath  = flag.String("journal", "", "master/demo: write-ahead journal path; admissions and round commits are logged so a restart on the same path recovers in-flight jobs (requires -serve)")
	fsyncMode    = flag.String("fsync", "always", "master/demo: journal fsync policy: always (survives machine crashes) or never (survives process crashes only, faster)")
	taskDeadline = flag.Duration("taskdeadline", 0, "master/demo: per-call worker task deadline; an expired call counts as a transport failure and fails over (0 = no deadline)")
)

func main() {
	flag.Parse()
	var err error
	switch *role {
	case "worker":
		err = runWorker()
	case "master":
		err = runMaster()
	case "demo":
		err = runDemo()
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "s3cluster:", err)
		os.Exit(1)
	}
}

func workerStore() (*dfs.Store, error) {
	store, err := dfs.NewStore(1, 1)
	if err != nil {
		return nil, err
	}
	if _, err := workload.AddTextFile(store, "corpus", *blocks, *blockSize, *seed); err != nil {
		return nil, err
	}
	// The lineitem table backs the selection/aggregation factories. Both
	// files derive from the shared seed, so every worker regenerates
	// byte-identical blocks and any worker can serve any block after a
	// failover.
	if _, err := workload.AddLineitemFile(store, "lineitem", *blocks, *blockSize, *seed); err != nil {
		return nil, err
	}
	if *cacheMB > 0 {
		if _, err := store.EnableCachePolicy(*cacheMB<<20, *cachePolicy); err != nil {
			return nil, err
		}
	}
	return store, nil
}

func runWorker() error {
	store, err := workerStore()
	if err != nil {
		return err
	}
	w := remote.NewWorker(store, remote.NewStandardRegistry())
	addr, err := w.Serve(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("worker serving corpus (%d x %d B, seed %d) on %s\n", *blocks, *blockSize, *seed, addr)
	if *masterAddr != "" {
		opts := remote.RegisterOptions{ID: *workerID, Heartbeat: *hb}
		if err := w.Register(*masterAddr, opts); err != nil {
			w.Close()
			return err
		}
		fmt.Printf("registering with master %s (heartbeat %v)\n", *masterAddr, *hb)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return w.Close()
}

func jobRefs(n int) map[scheduler.JobID]remote.JobRef {
	refs := make(map[scheduler.JobID]remote.JobRef, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		refs[scheduler.JobID(i+1)] = remote.JobRef{
			Name:      fmt.Sprintf("wordcount-%s", prefixes[i]),
			Factory:   "wordcount",
			Param:     prefixes[i],
			NumReduce: 2,
		}
	}
	return refs
}

func runMaster() error {
	var refs map[scheduler.JobID]remote.JobRef
	if !*serve {
		// Daemon mode registers every job through the admission path;
		// batch mode pre-registers the whole trace up front.
		refs = jobRefs(*jobs)
	}
	if *ctrlAddr != "" {
		// Dynamic membership: listen for worker registrations and gate
		// round-driving on the expected cluster size. The control-plane
		// deadlines scale from the heartbeat interval the workers were
		// told to use.
		master := remote.NewMaster(refs)
		cfg := remote.ControlConfig{
			SuspectAfter: *hb * 5 / 2,
			DeadAfter:    *hb * 5,
		}
		bound, err := master.ListenControl(*ctrlAddr, cfg)
		if err != nil {
			return err
		}
		defer master.Close()
		fmt.Printf("control plane on %s; waiting for %d worker(s)\n", bound, *minWorkers)
		if err := master.WaitForWorkers(*minWorkers, 5*time.Minute); err != nil {
			return err
		}
		return drive(master, *minWorkers, refs)
	}
	addrs := strings.Split(*workerStr, ",")
	if len(addrs) == 0 || addrs[0] == "" {
		return fmt.Errorf("master needs -control (registration mode) or -workers (static topology)")
	}
	master, err := remote.Dial(addrs, refs)
	if err != nil {
		return err
	}
	defer master.Close()
	return drive(master, len(addrs), refs)
}

func runDemo() error {
	reg := remote.NewStandardRegistry()
	var addrs []string
	var workers []*remote.Worker
	for i := 0; i < *demoN; i++ {
		store, err := workerStore()
		if err != nil {
			return err
		}
		w := remote.NewWorker(store, reg)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	fmt.Printf("demo: %d in-process workers on %v\n", *demoN, addrs)
	var refs map[scheduler.JobID]remote.JobRef
	if !*serve {
		refs = jobRefs(*jobs)
	}
	master, err := remote.Dial(addrs, refs)
	if err != nil {
		return err
	}
	defer master.Close()
	return drive(master, *demoN, refs)
}

// clusterAdmission adapts the runtime's live admission queue to the
// status server's HTTP API: it validates submissions against the
// workers' factory registry, registers the JobRef with the master
// inside the source's pre-admission hook (so the engine can never race
// ahead of registration), and tracks names for the final report.
type clusterAdmission struct {
	src *runtime.LiveSource
	// dag wraps src with dependency tracking: jobs submitted with
	// dependsOn are held until their producers finish and materialize.
	dag       *pipeline.LiveDAG
	master    *remote.Master
	factories map[string]bool
	// journal, when set, gets a job-admitted record inside the same
	// pre-admission hook — written (and fsynced, per policy) before the
	// submission is acknowledged, so an acked job survives a crash.
	journal *journal.Journal

	mu   sync.Mutex
	refs map[scheduler.JobID]remote.JobRef
}

// factoryFile routes a job factory to the file it scans: wordcount
// reads the text corpus, the TPC-H-shaped factories read the lineitem
// table. Unknown factories never get here (admission validates first).
func factoryFile(factory string) string {
	switch factory {
	case "selection", "aggregation":
		return "lineitem"
	default:
		return "corpus"
	}
}

func newClusterAdmission(src *runtime.LiveSource, dag *pipeline.LiveDAG, master *remote.Master) *clusterAdmission {
	a := &clusterAdmission{
		src:       src,
		dag:       dag,
		master:    master,
		factories: make(map[string]bool),
		refs:      make(map[scheduler.JobID]remote.JobRef),
	}
	// The daemon validates against the same standard registry every
	// worker runs, so a typo'd factory is rejected at the HTTP boundary
	// instead of aborting the pass worker-side.
	for _, name := range remote.NewStandardRegistry().Names() {
		a.factories[name] = true
	}
	return a
}

// SubmitJob implements status.Admission.
func (a *clusterAdmission) SubmitJob(req status.JobRequest) (scheduler.JobID, error) {
	factory := req.Factory
	if factory == "" {
		factory = "wordcount"
	}
	if !a.factories[factory] {
		return 0, fmt.Errorf("unknown job factory %q (have %v)", factory, remote.NewStandardRegistry().Names())
	}
	deps := append([]scheduler.JobID(nil), req.DependsOn...)
	if factory == "topk" && len(deps) == 0 {
		// topk parses key\tcount lines — a DAG stage's output framing.
		// Pointing it at the raw corpus would abort the shared pass
		// worker-side; refuse at the HTTP boundary instead.
		return 0, fmt.Errorf("factory %q scans another job's materialized output; submit it with dependsOn", factory)
	}
	name := req.Name
	if name == "" {
		if req.Param != "" {
			name = fmt.Sprintf("%s-%s", factory, req.Param)
		} else {
			name = factory
		}
	}
	numReduce := req.NumReduce
	if numReduce <= 0 {
		numReduce = 2
	}
	ref := remote.JobRef{Name: name, Factory: factory, Param: req.Param, NumReduce: numReduce}
	meta := scheduler.JobMeta{
		Name:     name,
		File:     factoryFile(factory),
		Weight:   req.Weight,
		Priority: req.Priority,
	}
	if len(deps) > 0 {
		// A dependent stage scans its first producer's materialized
		// output; the remaining dependencies are precedence-only.
		meta.File = workload.DerivedFileName(deps[0])
	}
	return a.submitStage(meta, ref, deps)
}

// submit runs the admission protocol for a dependency-free job.
func (a *clusterAdmission) submit(meta scheduler.JobMeta, ref remote.JobRef) (scheduler.JobID, error) {
	return a.submitStage(meta, ref, nil)
}

// submitStage runs the admission protocol for one job: journal the
// admission (write-ahead — a crash after the ack must still know the
// job and its dependencies), register its program with the master, and
// record its name, all inside the source's pre-admission hook so the
// engine can never see a half-registered job. A journal append failure
// rejects the submission. Jobs with unfinished dependencies are held by
// the DAG layer and surface as "waiting" on the status API.
func (a *clusterAdmission) submitStage(meta scheduler.JobMeta, ref remote.JobRef, deps []scheduler.JobID) (scheduler.JobID, error) {
	return a.dag.SubmitStage(meta, deps, func(id scheduler.JobID) error {
		if a.journal != nil {
			m := meta
			m.ID = id
			rec := journal.JobAdmittedRecord{
				ID: id, Name: ref.Name, Factory: ref.Factory,
				Param: ref.Param, NumReduce: ref.NumReduce, Meta: m,
				DependsOn: deps,
			}
			if err := a.journal.AppendRecord(journal.KindJobAdmitted, rec); err != nil {
				return fmt.Errorf("journaling admission: %w", err)
			}
		}
		if err := a.master.RegisterJob(id, ref); err != nil {
			return err
		}
		a.adopt(id, ref)
		return nil
	})
}

// adopt records a job's ref for the final report without submitting.
func (a *clusterAdmission) adopt(id scheduler.JobID, ref remote.JobRef) {
	a.mu.Lock()
	a.refs[id] = ref
	a.mu.Unlock()
}

// JobStatus implements status.Admission.
func (a *clusterAdmission) JobStatus(id scheduler.JobID) (runtime.JobStatus, bool) {
	return a.src.Status(id)
}

// Jobs implements status.Admission.
func (a *clusterAdmission) Jobs() []runtime.JobStatus {
	return a.src.Jobs()
}

// jobNames snapshots the admitted id→display-name mapping.
func (a *clusterAdmission) jobNames() map[scheduler.JobID]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[scheduler.JobID]string, len(a.refs))
	for id, ref := range a.refs {
		out[id] = ref.Name
	}
	return out
}

func drive(master *remote.Master, numWorkers int, refs map[scheduler.JobID]remote.JobRef) error {
	master.SetTimeScale(1e6)
	if *taskDeadline > 0 {
		master.SetTaskDeadline(*taskDeadline)
	}

	// The scheduler's segment plans: metadata only, matching the two
	// files every worker serves (text corpus + lineitem table).
	planStore, err := dfs.NewStore(numWorkers, 1)
	if err != nil {
		return fmt.Errorf("planning store for %d workers: %w", numWorkers, err)
	}
	var plans []*dfs.SegmentPlan
	for _, name := range []string{"corpus", "lineitem"} {
		f, err := planStore.AddMetaFile(name, *blocks, *blockSize)
		if err != nil {
			return err
		}
		plan, err := dfs.PlanSegments(f, numWorkers)
		if err != nil {
			return err
		}
		plans = append(plans, plan)
	}

	var opts runtime.Options
	var spans *trace.Log
	if *traceJSON != "" {
		spans, err = trace.New(1 << 16)
		if err != nil {
			return err
		}
		opts.Spans = spans
		master.SetTrace(spans)
	}
	// The scheduler shares the span log so JQM job-lifetime spans land
	// in the same trace as the driver's round/stage spans.
	sched, err := core.NewMultiFile(plans, spans)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	rm := metrics.NewRunMetrics(reg)
	opts.Metrics = rm

	var jnl *journal.Journal
	var replayed *journal.Replayed
	if *journalPath != "" {
		if !*serve {
			return fmt.Errorf("-journal requires -serve: batch runs pre-register their whole workload, so there is nothing to recover")
		}
		pol, err := journal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		jnl, replayed, err = journal.Open(*journalPath, journal.Options{
			Sync: pol,
			OnAppend: func(st journal.Stats) {
				rm.JournalAppends.Inc()
				rm.JournalBytes.Set(float64(st.Bytes))
			},
		})
		if err != nil {
			return err
		}
		defer jnl.Close()
		if replayed.Corruption != nil {
			fmt.Printf("journal: repaired torn tail (%v); %d intact record(s) kept\n",
				replayed.Corruption, len(replayed.Entries))
		}
		master.SetJournal(jnl)
		opts.Commits = &journalCommits{j: jnl}
	}

	var src *runtime.LiveSource
	var dag *pipeline.LiveDAG
	var adm *clusterAdmission
	// remat rebuilds one finished job's output as a scannable derived
	// file; the DAG layer invokes it on the engine goroutine between
	// rounds, and recovery invokes it directly to restore materialized
	// stages before the engine starts.
	remat := func(id scheduler.JobID) error {
		return materializeStage(master, sched, planStore, jnl, numWorkers, id)
	}
	statusAddr := *statAddr
	if *serve {
		src = runtime.NewLiveSource()
		dag = pipeline.NewLiveDAG(src, func(id scheduler.JobID, _ vclock.Time) (vclock.Duration, error) {
			return 0, remat(id)
		})
		adm = newClusterAdmission(src, dag, master)
		adm.journal = jnl
		if statusAddr == "" {
			// The daemon is pointless without its HTTP surface.
			statusAddr = "127.0.0.1:8080"
		}
	}
	var srv *status.Server
	if statusAddr != "" {
		srv = status.NewServer(sched.Name())
		srv.SetRegistry(reg)
		srv.SetCluster(master)
		srv.SetResults(master)
		if adm != nil {
			srv.SetAdmission(adm)
		}
		addr, err := srv.Serve(statusAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("status dashboard: http://%s/ (also /metrics, /cluster, /debug/pprof/)\n", addr)
		if adm != nil {
			fmt.Printf("job admission: POST http://%s/jobs accepts {\"factory\",\"param\",...}; GET /jobs lists\n", addr)
		}
		opts.Hooks = srv.Hooks(sched)
	}

	var res *runtime.Result
	var names map[scheduler.JobID]string
	if *serve {
		recovered := false
		if jnl != nil && len(replayed.Entries) > 0 {
			rep, err := recoverFromJournal(jnl, replayed.Entries, sched, master, src, dag, adm, remat, &opts)
			if err != nil {
				return fmt.Errorf("recovering from %s: %w", *journalPath, err)
			}
			recovered = true
			nth := rep.state.Recoveries + 1
			fmt.Printf("journal recovery #%d from %s: %d job(s) resumed mid-pass, %d resubmitted, %d already settled\n",
				nth, *journalPath, rep.resumed, rep.restarted, rep.settled)
			rm.Recoveries.Add(float64(nth))
			rm.JobsRecovered.Add(float64(rep.resumed + rep.restarted))
			spans.Addf(0, trace.JournalRecovered, -1, -1,
				"recovery #%d: %d resumed, %d restarted", nth, rep.resumed, rep.restarted)
			if srv != nil {
				srv.SetRecovery(status.RecoveryInfo{
					Recoveries:    nth,
					JobsResumed:   rep.resumed,
					JobsRestarted: rep.restarted,
					JournalPath:   *journalPath,
				})
			}
		}
		if !recovered {
			// Seed the initial workload through the same admission path
			// HTTP submissions take. A recovered boot skips seeding: its
			// workload is whatever the journal says was in flight.
			prefixes := workload.DistinctPrefixes(*jobs)
			for i := 0; i < *jobs; i++ {
				if _, err := adm.SubmitJob(status.JobRequest{Factory: "wordcount", Param: prefixes[i]}); err != nil {
					return err
				}
			}
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		if jnl != nil {
			// With a journal, SIGTERM means "checkpoint and yield": the
			// engine stops at the next round boundary, the scheduler
			// snapshot lands in a checkpoint record, and a later boot on
			// the same journal resumes the pass. SIGINT still drains.
			stop := make(chan struct{})
			opts.Stop = stop
			term := make(chan os.Signal, 1)
			signal.Notify(term, syscall.SIGTERM)
			go func() {
				<-term
				signal.Stop(term)
				fmt.Println("sigterm: checkpointing at the next round boundary")
				close(stop)
				src.Close()
			}()
		} else {
			// Without a journal a checkpoint would be lost anyway, so
			// SIGTERM degrades to the SIGINT drain.
			signal.Notify(sig, syscall.SIGTERM)
		}
		go func() {
			<-sig
			signal.Stop(sig)
			fmt.Println("interrupt: closing admission, draining in-flight jobs")
			src.Close()
		}()
		// The engine sees the DAG wrapper: arrivals flow through it so
		// deferred materializations drain on the engine goroutine, and
		// its JobTracker hooks release (or cascade-fail) dependents as
		// producers settle.
		res, err = runtime.Run(sched, master, dag, opts)
		names = adm.jobNames()
	} else {
		var arrivals []runtime.Arrival
		for id := range refs {
			arrivals = append(arrivals, runtime.Arrival{
				Job: scheduler.JobMeta{ID: id, File: "corpus"},
				At:  vclock.Time(id - 1),
			})
		}
		res, err = runtime.RunTrace(sched, master, arrivals, opts)
		names = make(map[scheduler.JobID]string, len(refs))
		for id, ref := range refs {
			names[id] = ref.Name
		}
	}
	if err != nil {
		return err
	}
	if res.Stopped {
		// Graceful SIGTERM stop: persist the between-rounds scheduler
		// state so the next boot resumes instead of re-running settled
		// segments. A failed snapshot (pipelined stages still draining a
		// reduce) degrades to a nil-snapshot checkpoint — recovery then
		// resubmits the pending jobs from their admission records.
		var snapPtr *scheduler.Snapshot
		if snap, serr := sched.StateSnapshot(); serr == nil {
			snapPtr = &snap
		}
		rec := journal.CheckpointRecord{At: res.End, Requeues: res.Requeues, Snapshot: snapPtr}
		if aerr := jnl.AppendRecord(journal.KindCheckpoint, rec); aerr != nil {
			return fmt.Errorf("writing shutdown checkpoint: %w", aerr)
		}
		fmt.Printf("checkpoint written after %d round(s): %d job(s) pending; restart with -journal %s to resume\n",
			res.Rounds, sched.PendingJobs(), *journalPath)
	}
	if spans != nil {
		out, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := spans.WriteChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *traceJSON)
	}
	if srv != nil {
		tet, tErr := res.Metrics.TET()
		art, aErr := res.Metrics.ART()
		srv.Update(func(st *status.State) {
			st.RunComplete = !res.Stopped
			if tErr == nil {
				st.TETSeconds = tet.Seconds()
			}
			if aErr == nil {
				st.ARTSeconds = art.Seconds()
			}
		})
	}
	fmt.Printf("completed %d jobs in %d rounds\n", res.Metrics.Jobs(), res.Rounds)

	stats, err := master.WorkerStats()
	if err != nil {
		return err
	}
	var reads int64
	var cache metrics.CacheStats
	for _, st := range stats {
		fmt.Printf("worker %s: %d block reads, %d map tasks, %d reduce tasks", st.Worker, st.BlockReads, st.MapTasks, st.ReduceTasks)
		if st.CacheHits+st.CacheMisses > 0 {
			fmt.Printf(", %d cache hits / %d misses", st.CacheHits, st.CacheMisses)
		}
		fmt.Println()
		reads += st.BlockReads
		cache.Add(metrics.CacheStats{Hits: st.CacheHits, Misses: st.CacheMisses})
	}
	fmt.Printf("cluster block reads: %d (isolated jobs would need %d)\n", reads, int64(len(names))*int64(*blocks))
	if cache.Hits+cache.Misses > 0 {
		fmt.Printf("cluster block cache: %d hits / %d misses (%.1f%% hit ratio)\n", cache.Hits, cache.Misses, 100*cache.HitRatio())
	}
	if srv != nil && cache.Hits+cache.Misses > 0 {
		srv.SetCache(cache)
	}
	for id, out := range master.Results() {
		fmt.Printf("job %d (%s): %d output keys\n", id, names[id], len(out))
	}
	return nil
}
