// SIGKILL-mid-DAG crash recovery: a wordcount→top-k pipeline plus an
// unrelated concurrent wordcount survive losing the master while the
// producer is still scanning. The restarted master must re-form the
// half-finished DAG from the journal — the held consumer holds again,
// the producer resumes, its output materializes, and the consumer's
// result is byte-identical to an uninterrupted run.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"s3sched/internal/workload"
)

// postJobDeps submits a job whose input is an earlier job's
// materialized reduce output.
func postJobDeps(t *testing.T, base, factory, param string, deps []int) int {
	t.Helper()
	parts := make([]string, len(deps))
	for i, d := range deps {
		parts[i] = strconv.Itoa(d)
	}
	body := fmt.Sprintf(`{"factory":%q,"param":%q,"dependsOn":[%s]}`,
		factory, param, strings.Join(parts, ","))
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %s: %s", resp.Status, out)
	}
	var reply struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("decoding submit reply: %v", err)
	}
	return reply.ID
}

// jobDetail fetches one job's state and declared dependencies.
func jobDetail(t *testing.T, base string, id int) (state string, dependsOn []int) {
	t.Helper()
	var st struct {
		State     string `json:"state"`
		DependsOn []int  `json:"dependsOn"`
	}
	if err := getJSON(fmt.Sprintf("%s/jobs/%d", base, id), &st); err != nil {
		t.Fatalf("GET /jobs/%d: %v", id, err)
	}
	return st.State, st.DependsOn
}

// submitDAGChain submits the pipeline under test: a wordcount producer,
// a top-3 consumer over its materialized output, and an unrelated
// wordcount that shares the producer's circular pass.
func submitDAGChain(t *testing.T, base string) (producer, consumer, bystander int) {
	t.Helper()
	prefixes := workload.DistinctPrefixes(2)
	producer = postJob(t, base, "wordcount", prefixes[0])
	consumer = postJobDeps(t, base, "topk", "3", []int{producer})
	bystander = postJob(t, base, "wordcount", prefixes[1])
	return producer, consumer, bystander
}

func TestMasterCrashRecoveryDAG(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test")
	}
	dir := t.TempDir()

	// --- incarnation 1: killed while the producer is mid-pass ---------
	ctrl, statusAddr := pickAddr(t), pickAddr(t)
	journalPath := filepath.Join(dir, "journal.wal")
	tracePath := filepath.Join(dir, "trace.json")
	base := "http://" + statusAddr

	m1 := spawnMaster(t, "dag-master1", ctrl, statusAddr, journalPath, "")
	startCrashWorker(t, ctrl, "dag-worker-a")
	startCrashWorker(t, ctrl, "dag-worker-b")
	waitStatus(t, base, 30*time.Second, "dag-master1 up", func(statusSnapshot) bool { return true })

	producer, consumer, bystander := submitDAGChain(t, base)
	ids := []int{producer, consumer, bystander}

	// The consumer must be admitted held: waiting state, dependency
	// visible through the status API (not yet scanning anything).
	state, deps := jobDetail(t, base, consumer)
	if state != "waiting" {
		t.Fatalf("consumer state = %q, want waiting", state)
	}
	if len(deps) != 1 || deps[0] != producer {
		t.Fatalf("consumer dependsOn = %v, want [%d]", deps, producer)
	}

	// One pass is crashBlocks/2 = 24 rounds; by round 3 the producer is
	// mid-flight and the consumer still held.
	waitStatus(t, base, 30*time.Second, "rounds to accumulate", func(st statusSnapshot) bool {
		return st.Rounds >= 3
	})
	if state, _ := jobDetail(t, base, consumer); state != "waiting" {
		t.Fatalf("consumer left waiting state before its producer finished: %q", state)
	}
	if err := m1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL dag-master1: %v", err)
	}
	_ = m1.cmd.Wait() // reap; exit status is meaningless after SIGKILL

	// --- incarnation 2: same journal re-forms the DAG -----------------
	m2 := spawnMaster(t, "dag-master2", ctrl, statusAddr, journalPath, tracePath)
	waitStatus(t, base, 30*time.Second, "dag-master2 recovery", func(st statusSnapshot) bool {
		return st.Recovery != nil
	})
	// The recovered consumer must still carry its dependency edge.
	if _, deps := jobDetail(t, base, consumer); len(deps) != 1 || deps[0] != producer {
		t.Fatalf("recovered consumer dependsOn = %v, want [%d]", deps, producer)
	}
	waitJobsDone(t, base, ids, 120*time.Second)

	st := waitStatus(t, base, 5*time.Second, "recovery visible", func(st statusSnapshot) bool {
		return st.Recovery != nil && st.Recovery.Recoveries >= 1
	})
	if st.Recovery.JobsResumed+st.Recovery.JobsRestarted == 0 {
		t.Errorf("recovery carried no jobs: %+v", st.Recovery)
	}
	got := jobOutputs(t, base, ids)

	// --- reference: uninterrupted run on a fresh journal --------------
	refCtrl, refStatus := pickAddr(t), pickAddr(t)
	refBase := "http://" + refStatus
	ref := spawnMaster(t, "dag-reference", refCtrl, refStatus, filepath.Join(dir, "ref.wal"), "")
	startCrashWorker(t, refCtrl, "dag-ref-worker-a")
	startCrashWorker(t, refCtrl, "dag-ref-worker-b")
	waitStatus(t, refBase, 30*time.Second, "dag-reference up", func(statusSnapshot) bool { return true })
	refProducer, refConsumer, refBystander := submitDAGChain(t, refBase)
	refIDs := []int{refProducer, refConsumer, refBystander}
	waitJobsDone(t, refBase, refIDs, 120*time.Second)
	want := jobOutputs(t, refBase, refIDs)

	for i, id := range ids {
		if !bytes.Equal(got[id], want[refIDs[i]]) {
			t.Errorf("job %d: output diverges from uninterrupted run (%d vs %d bytes)\n got: %s\nwant: %s",
				id, len(got[id]), len(want[refIDs[i]]), got[id], want[refIDs[i]])
		}
	}
	// The consumer's output is the top-k ranking, not raw counts: it
	// must be non-empty and smaller than its producer's full output.
	if len(got[consumer]) == 0 || len(got[consumer]) >= len(got[producer]) {
		t.Errorf("consumer output %dB vs producer %dB: top-k did not rank/truncate",
			len(got[consumer]), len(got[producer]))
	}

	// --- graceful shutdown + trace assertion --------------------------
	if err := ref.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("SIGINT dag-reference: %v", err)
	}
	_ = ref.wait(t, 30*time.Second)
	if err := m2.cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatalf("SIGINT dag-master2: %v", err)
	}
	if err := m2.wait(t, 30*time.Second); err != nil {
		t.Fatalf("dag-master2 exited uncleanly: %v", err)
	}
	traceOut, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if !bytes.Contains(traceOut, []byte("journal-recovered")) {
		t.Error("exported trace lacks the journal-recovered event")
	}
}
