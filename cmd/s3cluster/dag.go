// DAG-stage materialization for the cluster daemon: when a finished
// job has dependents, its reduce output becomes a real replicated file
// — written into the master's planning store, installed on every live
// worker over RPC, journaled, and registered with the scheduler so the
// dependents' scans join the circular pass like any other jobs'.
package main

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/journal"
	"s3sched/internal/mapreduce"
	"s3sched/internal/remote"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

// materializeStage turns job id's committed reduce output into the
// derived file its consumers scan. Steps, in crash-safe order:
//
//  1. serialize the output into the planning store (idempotent: a file
//     already present — a recovery replay — is reused);
//  2. push the blocks to every live worker (InstallFile is idempotent
//     worker-side; a worker registering later gets the file replayed
//     during its handshake);
//  3. journal a stage-materialized record so a restart re-installs the
//     file before resuming consumers;
//  4. register the segment plan with the scheduler so consumers can be
//     submitted against the new file.
//
// It runs on the engine goroutine between rounds (LiveDAG calls it from
// JobFinished or Pop), which is the only time MultiFile.AddPlan is
// legal.
func materializeStage(master *remote.Master, sched *core.MultiFile, planStore *dfs.Store, jnl *journal.Journal, segBlocks int, id scheduler.JobID) error {
	name := workload.DerivedFileName(id)
	file, err := planStore.File(name)
	if err != nil {
		out, ok := master.JobOutput(id)
		if !ok {
			return fmt.Errorf("job %d has no committed result to materialize", id)
		}
		file, err = mapreduce.StoreResult(planStore, name, *blockSize, &mapreduce.Result{Output: out})
		if err != nil {
			return fmt.Errorf("storing %s: %w", name, err)
		}
	}
	blocks := make([][]byte, file.NumBlocks)
	for i := range blocks {
		b, err := planStore.ReadBlock(dfs.BlockID{File: name, Index: i})
		if err != nil {
			return fmt.Errorf("reading %s block %d: %w", name, i, err)
		}
		blocks[i] = b
	}
	if err := master.InstallFile(name, file.BlockSize, blocks); err != nil {
		return fmt.Errorf("installing %s: %w", name, err)
	}
	if jnl != nil {
		rec := journal.StageMaterializedRecord{Job: id, File: name, BlockSize: file.BlockSize, Blocks: file.NumBlocks}
		if err := jnl.AppendRecord(journal.KindStageMaterialized, rec); err != nil {
			return fmt.Errorf("journaling materialization of %s: %w", name, err)
		}
	}
	for _, registered := range sched.Files() {
		if registered == name {
			// The plan survived in-process (a consumer re-submission after
			// the producer re-materialized); nothing left to do.
			return nil
		}
	}
	plan, err := dfs.PlanSegments(file, segBlocks)
	if err != nil {
		return err
	}
	return sched.AddPlan(plan, 1)
}
