// Command s3bench regenerates every table and figure of the paper's
// evaluation (§V) and prints rows in the paper's presentation: Table I
// workload profile, Figure 3 combined-job cost, the six Figure 4
// panels (normalized TET/ART per scheme), the §III analytic examples,
// and the DESIGN.md ablations.
//
// Usage:
//
//	s3bench                 # run everything
//	s3bench -exp fig4a      # one experiment
//	s3bench -exp fig4       # all six panels + claim check
//	s3bench -exp ablations  # X1..X5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/experiments"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig3|fig4|fig4a..fig4f|examples|ablations|window|distributed|jitter|poisson|taxonomy|estimator|pipeline|faults|cache|all")
	jsonPath := flag.String("json", "", "also write the Figure 4 panels + claim check as JSON to this file")
	traceJSON := flag.String("tracejson", "", "write a Chrome trace (chrome://tracing) of a fixed demo workload to this file and exit")
	pipeMode := flag.String("pipeline", "both", "pipeline experiment mode: on|off|both (A/B)")
	faultRate := flag.Float64("faultrate", 0.02, "faults experiment: max transient block-failure rate in [0,1)")
	faultSeed := flag.Int64("faultseed", 42, "faults experiment: fault schedule seed (same seed, same schedule)")
	faultJSON := flag.String("faultjson", "", "faults experiment: also write the results as JSON to this file")
	cacheMB := flag.Int("cachemb", 4096, "cache experiment: per-node block-cache budget in MB (4096 fits a node's share of the 160 GB input)")
	cacheFrac := flag.Float64("cachefrac", 0.1, "cache experiment: cached scan cost as a fraction of disk cost, in [0,1]")
	cachePolicy := flag.String("cachepolicy", "all", "cache experiment: eviction policy lru|2q|cursor, or all to sweep every policy")
	cacheJSON := flag.String("cachejson", "", "cache experiment: also write the results as JSON to this file")
	flag.Parse()

	if *pipeMode != "on" && *pipeMode != "off" && *pipeMode != "both" {
		fmt.Fprintf(os.Stderr, "unknown -pipeline mode %q (want on|off|both)\n", *pipeMode)
		os.Exit(2)
	}

	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err == nil {
			err = writeTraceJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceJSON)
		return
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	var err error
	switch *exp {
	case "all":
		err = firstErr(runTable1, runFig3, runExamples, runFig4All, runAblations, runWindowStudy, runDistributed, runJitter, runPoisson, runTaxonomy, runEstimator,
			func() error { return runPipeline(*pipeMode) },
			func() error { return runFaults(*faultRate, *faultSeed, *faultJSON) },
			func() error { return runCache(*cacheMB, *cacheFrac, *cachePolicy, *cacheJSON) })
	case "table1":
		err = runTable1()
	case "fig3":
		err = runFig3()
	case "examples":
		err = runExamples()
	case "fig4":
		err = runFig4All()
	case "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f":
		err = runFig4Panel((*exp)[4:])
	case "ablations":
		err = runAblations()
	case "window":
		err = runWindowStudy()
	case "distributed":
		err = runDistributed()
	case "jitter":
		err = runJitter()
	case "poisson":
		err = runPoisson()
	case "taxonomy":
		err = runTaxonomy()
	case "estimator":
		err = runEstimator()
	case "pipeline":
		err = runPipeline(*pipeMode)
	case "faults":
		err = runFaults(*faultRate, *faultSeed, *faultJSON)
	case "cache":
		err = runCache(*cacheMB, *cacheFrac, *cachePolicy, *cacheJSON)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// jsonScheme is one scheme's metrics in the machine-readable record.
type jsonScheme struct {
	TET     float64 `json:"tetSeconds"`
	ART     float64 `json:"artSeconds"`
	NormTET float64 `json:"tetVsS3"`
	NormART float64 `json:"artVsS3"`
}

// jsonReport is the machine-readable regression record: every Figure 4
// scheme's metrics plus the claim-check outcome.
type jsonReport struct {
	Panels         map[string]map[string]jsonScheme `json:"panels"`
	ClaimsTotal    int                              `json:"claimsTotal"`
	ClaimsHeld     int                              `json:"claimsHeld"`
	ClaimsViolated []string                         `json:"claimsViolated,omitempty"`
}

func writeJSON(path string) error {
	panels, err := experiments.RunAllPanels(experiments.DefaultParams())
	if err != nil {
		return err
	}
	rep := jsonReport{Panels: map[string]map[string]jsonScheme{}}
	for id, p := range panels {
		m := map[string]jsonScheme{}
		for _, row := range p.Report.Rows {
			m[row.Scheme] = jsonScheme{row.TET.Seconds(), row.ART.Seconds(), row.NormTET, row.NormART}
		}
		rep.Panels["fig4"+id] = m
	}
	violations := experiments.CheckPaperClaims(panels)
	rep.ClaimsTotal = experiments.NumPaperClaims()
	rep.ClaimsHeld = rep.ClaimsTotal - len(violations)
	rep.ClaimsViolated = violations

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func firstErr(fns ...func() error) error {
	for _, fn := range fns {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

func runTable1() error {
	fmt.Println("== Table I: wordcount details (normal workload), real engine, scaled input ==")
	res, err := experiments.Table1(experiments.DefaultTable1Config())
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %d bytes (paper: 160 GB)\n", "Input size", res.InputBytes)
	fmt.Printf("%-28s %d (paper: ~250 million at scale; projected %d)\n", "Map output records", res.MapOutputRecords, res.ProjMapOutRecords)
	fmt.Printf("%-28s %d (paper: ~60-80 thousand)\n", "Reduce output records", res.ReduceOutRecords)
	fmt.Printf("%-28s %d bytes\n", "Map output size", res.MapOutputBytes)
	fmt.Printf("%-28s %d bytes (paper: ~1.5 MB)\n", "Reduce output size", res.ReduceOutBytes)
	fmt.Printf("%-28s %d map / %d reduce\n", "Tasks", res.MapTasks, res.ReduceTasks)
	fmt.Printf("%-28s %.0fx\n\n", "Scale factor to paper", res.ScaleToPaper)
	return nil
}

func runFig3() error {
	fmt.Println("== Figure 3: cost of combined jobs (n merged wordcount jobs, real engine) ==")
	points, err := experiments.Fig3(experiments.DefaultFig3Config())
	if err != nil {
		return err
	}
	base := points[0].Total.Seconds()
	fmt.Printf("%4s %12s %12s %12s %10s %10s\n", "n", "total", "map", "reduce", "vs n=1", "scans")
	for _, p := range points {
		fmt.Printf("%4d %12v %12v %12v %9.2fx %10d\n",
			p.Jobs, p.Total.Round(100), p.MapPhase.Round(100), p.ReducePhase.Round(100),
			p.Total.Seconds()/base, p.BlockReads)
	}
	fmt.Println("(paper: +25.5% total at n=10; one physical scan regardless of n)")
	fmt.Println()

	fmt.Println("== Figure 3 (cost model, paper scale: 2560 blocks / 40 slots) ==")
	simPoints, err := experiments.Fig3Sim(experiments.DefaultParams(), 10)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %12s %12s %12s %10s\n", "n", "total", "map", "reduce", "vs n=1")
	for _, p := range simPoints {
		fmt.Printf("%4d %12s %12s %12s %9.2fx\n", p.Jobs, p.Total, p.MapTime, p.Reduce, p.VsSingle)
	}
	fmt.Println("(paper: 1.255x at n=10)")
	fmt.Println()
	return nil
}

func runExamples() error {
	fmt.Println("== §III Examples 1-3: two 100s jobs, second arriving at +20s / +80s ==")
	fmt.Printf("%-9s %8s %8s %8s   %8s %8s\n", "", "offset", "TET", "ART", "paperTET", "paperART")
	type expect struct {
		scheme   string
		offset   vclock.Time
		tet, art float64
	}
	cases := []expect{
		{"fifo", 20, 200, 140}, {"mrshare", 20, 120, 110}, {"s3", 20, 120, 100},
		{"fifo", 80, 200, 110}, {"mrshare", 80, 180, 140}, {"s3", 80, 180, 100},
	}
	for _, c := range cases {
		store, err := dfs.NewStore(1, 1)
		if err != nil {
			return err
		}
		f, err := store.AddMetaFile("input", 10, 64<<20)
		if err != nil {
			return err
		}
		plan, err := dfs.PlanSegments(f, 1)
		if err != nil {
			return err
		}
		var sched scheduler.Scheduler
		switch c.scheme {
		case "fifo":
			sched = scheduler.NewFIFO(plan, nil)
		case "mrshare":
			sched, err = scheduler.NewMRShare(plan, []int{2}, nil)
			if err != nil {
				return err
			}
		case "s3":
			sched = core.New(plan, nil)
		}
		exec := sim.NewExecutor(sim.NewCluster(1, 1), store, sim.CostModel{ScanMBps: 6.4})
		res, err := driver.Run(sched, exec, []driver.Arrival{
			{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
			{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: c.offset},
		})
		if err != nil {
			return err
		}
		tet, _ := res.Metrics.TET()
		art, _ := res.Metrics.ART()
		fmt.Printf("%-9s %8v %8.0f %8.0f   %8.0f %8.0f\n",
			c.scheme, c.offset, tet.Seconds(), art.Seconds(), c.tet, c.art)
	}
	fmt.Println()
	return nil
}

var panelTitles = map[string]string{
	"a": "Figure 4(a): sparse pattern, normal workload, 64 MB blocks",
	"b": "Figure 4(b): dense pattern, normal workload, 64 MB blocks",
	"c": "Figure 4(c): sparse pattern, heavy workload, 64 MB blocks",
	"d": "Figure 4(d): sparse pattern, normal workload, 128 MB blocks",
	"e": "Figure 4(e): sparse pattern, normal workload, 32 MB blocks",
	"f": "Figure 4(f): selection workload (TPC-H lineitem), 64 MB blocks",
}

func runFig4Panel(panel string) error {
	res, err := experiments.Fig4Panel(panel, experiments.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("== %s ==\n", panelTitles[panel])
	fmt.Print(res.Report.String())
	fmt.Println()
	return nil
}

func runFig4All() error {
	panels, err := experiments.RunAllPanels(experiments.DefaultParams())
	if err != nil {
		return err
	}
	for _, p := range []string{"a", "b", "c", "d", "e", "f"} {
		fmt.Printf("== %s ==\n", panelTitles[p])
		fmt.Print(panels[p].Report.String())
		fmt.Println()
	}
	violations := experiments.CheckPaperClaims(panels)
	fmt.Printf("paper-shape claims: %d/%d hold\n", experiments.NumPaperClaims()-len(violations), experiments.NumPaperClaims())
	for _, v := range violations {
		fmt.Println("  violated:", v)
	}
	fmt.Println()
	return nil
}

func runWindowStudy() error {
	fmt.Println("== Beyond the paper: time-window MRShare vs S3 (unknown job patterns) ==")
	rows, err := experiments.WindowStudy(experiments.DefaultParams(), []vclock.Duration{30, 120, 240, 480})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s\n", "variant", "TET", "ART")
	for _, r := range rows {
		fmt.Printf("%-14s %12s %12s\n", r.Name, r.TET, r.ART)
	}
	fmt.Println("(short windows forfeit sharing; long windows re-create MRShare's waiting)")
	fmt.Println()
	return nil
}

func runDistributed() error {
	fmt.Println("== Distributed substrate: cluster-wide scans, S3 vs FIFO (TCP workers) ==")
	res, err := experiments.DistributedScanSavings(experiments.DefaultDistributedConfig())
	if err != nil {
		return err
	}
	fmt.Printf("%d workers, %d jobs, %d blocks\n", res.Workers, res.Jobs, res.Blocks)
	fmt.Printf("S3:   %d block reads in %d rounds\n", res.S3Reads, res.S3Rounds)
	fmt.Printf("FIFO: %d block reads in %d rounds\n", res.FIFOReads, res.FIFORounds)
	fmt.Printf("outputs identical: %v\n\n", res.OutputAgree)
	return nil
}

func runJitter() error {
	fmt.Println("== Robustness: fig4a under ±15% arrival jitter (40 seeded trials) ==")
	res, err := experiments.JitterStudy(experiments.DefaultParams(), 40, 0.15, 42)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %22s %22s %14s\n", "scheme", "TET/S3 mean [min,max]", "ART/S3 mean [min,max]", "S3 wins (T/A)")
	for _, s := range res {
		fmt.Printf("%-8s %8.2f [%.2f,%.2f]    %8.2f [%.2f,%.2f]    %d/%d of %d\n",
			s.Scheme, s.MeanTET, s.MinTET, s.MaxTET, s.MeanART, s.MinART, s.MaxART,
			s.S3WinsTET, s.S3WinsART, s.Trials)
	}
	fmt.Println("(S3's advantage survives arrival perturbation — not a calibration knife-edge)")
	fmt.Println()
	return nil
}

func runPoisson() error {
	fmt.Println("== Queueing view: Poisson arrivals, load sweep (20 jobs per point) ==")
	points, err := experiments.PoissonStudy(experiments.DefaultParams(),
		[]float64{0.2, 0.5, 0.8, 1.0, 1.3, 1.8}, 20, 7)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %12s %12s %12s %10s\n", "rho", "meanGap", "S3 ART", "FIFO ART", "ART ratio")
	for _, pt := range points {
		fmt.Printf("%6.1f %12s %12s %12s %9.2fx\n", pt.Rho, pt.MeanGap, pt.S3ART, pt.FIFOART, pt.ARTRatio)
	}
	fmt.Println("(FIFO queues blow up past rho=1; S3 absorbs load into bigger shared batches)")
	fmt.Println()
	return nil
}

func runTaxonomy() error {
	fmt.Println("== §II-B scheduler taxonomy, measured (sparse normal workload) ==")
	rows, err := experiments.TaxonomyStudy(experiments.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s\n", "scheme", "TET", "ART")
	for _, r := range rows {
		fmt.Printf("%-6s %12s %12s\n", r.Scheme, r.TET, r.ART)
	}
	fmt.Println("(fair = partial utilization: no blocking, but no sharing either —")
	fmt.Println(" for identical-length jobs it is strictly dominated; S3 wins both)")
	fmt.Println()
	return nil
}

func runEstimator() error {
	fmt.Println("== §IV-D1 completion-time estimation accuracy ==")
	res, err := experiments.EstimatorStudy(experiments.DefaultParams(), 30)
	if err != nil {
		return err
	}
	fmt.Printf("observed %d rounds, predicted %d active jobs mid-run\n", res.ObservedRounds, res.PredictedJobs)
	fmt.Printf("mean abs. error %.1f%% of job lifetime (worst %.1f%%)\n\n", 100*res.MAPE, 100*res.MaxErr)
	return nil
}

func runPipeline(mode string) error {
	fmt.Printf("== Stage pipelining: reduce of round N under scan of round N+1 (S3, %d reduce workers, -pipeline=%s) ==\n",
		driver.DefaultReduceWorkers, mode)
	res, err := experiments.PipelineStudyModes(experiments.DefaultParams(), mode != "on", mode != "off")
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	switch mode {
	case "both":
		fmt.Println("(gain tracks the reduce share of a round: heavy reduce output hides under the next scan)")
	default:
		fmt.Println("(single-mode run; use -pipeline=both for the A/B gain column)")
	}
	fmt.Println()
	return nil
}

// faultsJSON is the machine-readable fault-study record
// (bench/faults.json).
type faultsJSON struct {
	Seed     int64             `json:"seed"`
	Replicas int               `json:"replicas"`
	Rates    []float64         `json:"rates"`
	Points   []faultsJSONPoint `json:"points"`
}

type faultsJSONPoint struct {
	Rate    float64                       `json:"rate"`
	Schemes map[string]faultsJSONSchemeRe `json:"schemes"`
}

type faultsJSONSchemeRe struct {
	TET            float64 `json:"tetSeconds"`
	ART            float64 `json:"artSeconds"`
	Rounds         int     `json:"rounds"`
	Completed      int     `json:"completed"`
	Failed         int     `json:"failed"`
	Retries        int     `json:"retries"`
	FailedAttempts int     `json:"failedAttempts"`
	RequeuedRounds int     `json:"requeuedRounds"`
}

func runFaults(rate float64, seed int64, jsonPath string) error {
	fmt.Printf("== Fault tolerance: TET/ART degradation under deterministic fault injection (seed %d) ==\n", seed)
	res, err := experiments.FaultStudy(rate, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-6s %10s %10s %8s %6s %6s %8s\n", "rate", "scheme", "TET(s)", "ART(s)", "rounds", "done", "fail", "retries")
	rec := faultsJSON{Seed: res.Seed, Replicas: res.Replicas, Rates: res.Rates}
	for _, pt := range res.Points {
		jp := faultsJSONPoint{Rate: pt.Rate, Schemes: make(map[string]faultsJSONSchemeRe)}
		for _, name := range []string{"s3", "fifo", "mrs1"} {
			sr, ok := pt.Schemes[name]
			if !ok {
				continue
			}
			fmt.Printf("%-8.3f %-6s %10.1f %10.1f %8d %6d %6d %8d\n",
				pt.Rate, name, sr.Summary.TET.Seconds(), sr.Summary.ART.Seconds(),
				sr.Rounds, sr.Completed, sr.Failed, sr.Faults.Retries)
			jp.Schemes[name] = faultsJSONSchemeRe{
				TET:            sr.Summary.TET.Seconds(),
				ART:            sr.Summary.ART.Seconds(),
				Rounds:         sr.Rounds,
				Completed:      sr.Completed,
				Failed:         sr.Failed,
				Retries:        sr.Faults.Retries,
				FailedAttempts: sr.Faults.FailedAttempts,
				RequeuedRounds: sr.Faults.RequeuedRounds,
			}
		}
		rec.Points = append(rec.Points, jp)
	}
	fmt.Println("(2-way replication: one crashed node leaves every block readable, so all jobs finish)")
	fmt.Println()
	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// cacheJSONRec is the machine-readable cache-study record
// (bench/cache-sweep.json).
type cacheJSONRec struct {
	Frac     float64           `json:"frac"`
	Policies []string          `json:"policies"`
	Points   []cacheJSONPoint  `json:"points"`
	Engine   []cacheJSONEngine `json:"engine"`
}

type cacheJSONPoint struct {
	Policy       string  `json:"policy"` // "" on the cache-off baseline
	CacheMB      int     `json:"cacheMB"`
	TET          float64 `json:"tetSeconds"`
	ART          float64 `json:"artSeconds"`
	Rounds       int     `json:"rounds"`
	CachedBlocks int64   `json:"cachedBlocks"`
	HitRatio     float64 `json:"hitRatio"`
	Evictions    int64   `json:"evictions"`
	Prefetches   int64   `json:"prefetches"`
}

type cacheJSONEngine struct {
	Policy           string `json:"policy"`
	Jobs             int    `json:"jobs"`
	OutputsIdentical bool   `json:"outputsIdentical"`
	CacheHits        int64  `json:"cacheHits"`
	Prefetches       int64  `json:"prefetches"`
	ColdReads        int64  `json:"coldReads"`
	WarmReads        int64  `json:"warmReads"`
}

func runCache(perNodeMB int, frac float64, policy, jsonPath string) error {
	if perNodeMB <= 0 {
		return fmt.Errorf("-cachemb must be positive, got %d", perNodeMB)
	}
	var policies []string
	if policy != "all" {
		if !dfs.ValidPolicy(policy) {
			return fmt.Errorf("-cachepolicy %q: want one of %v, or all", policy, dfs.Policies())
		}
		policies = []string{policy}
	}
	fmt.Printf("== Block cache: repeated-arrival workload (sparse pattern, S3), warm reads at %.2fx disk cost ==\n", frac)
	res, err := experiments.CacheStudy([]int{0, perNodeMB / 2, perNodeMB}, frac, policies)
	if err != nil {
		return err
	}
	rec := cacheJSONRec{Frac: res.Frac, Policies: res.Policies}
	fmt.Printf("%-8s %-10s %10s %10s %8s %10s %9s %10s %10s\n", "policy", "cache/node", "TET(s)", "ART(s)", "rounds", "warmReads", "hitRatio", "evictions", "prefetches")
	for _, pt := range res.Points {
		name := pt.Policy
		if name == "" {
			name = "off"
		}
		fmt.Printf("%-8s %7d MB %10.1f %10.1f %8d %10d %8.1f%% %10d %10d\n",
			name, pt.CacheMB, pt.Summary.TET.Seconds(), pt.Summary.ART.Seconds(),
			pt.Rounds, pt.CachedBlocks, 100*pt.HitRatio, pt.Evictions, pt.Prefetches)
		rec.Points = append(rec.Points, cacheJSONPoint{
			Policy:       pt.Policy,
			CacheMB:      pt.CacheMB,
			TET:          pt.Summary.TET.Seconds(),
			ART:          pt.Summary.ART.Seconds(),
			Rounds:       pt.Rounds,
			CachedBlocks: pt.CachedBlocks,
			HitRatio:     pt.HitRatio,
			Evictions:    pt.Evictions,
			Prefetches:   pt.Prefetches,
		})
	}
	for _, eng := range res.Engine {
		rec.Engine = append(rec.Engine, cacheJSONEngine{
			Policy:           eng.Policy,
			Jobs:             eng.Jobs,
			OutputsIdentical: eng.OutputsIdentical,
			CacheHits:        eng.CacheHits,
			Prefetches:       eng.Prefetches,
			ColdReads:        eng.ColdReads,
			WarmReads:        eng.WarmReads,
		})
		fmt.Printf("engine check [%s]: %d jobs, outputs identical: %v, %d cache hits, %d prefetches (%d cold reads -> %d warm)\n",
			eng.Policy, eng.Jobs, eng.OutputsIdentical, eng.CacheHits, eng.Prefetches, eng.ColdReads, eng.WarmReads)
	}
	fmt.Println("(LRU under a circular scan is a cliff: an undersized cache evicts each block")
	fmt.Println(" just before the cursor returns. 2Q's protected queue keeps some of the cycle")
	fmt.Println(" warm; the cursor policy pins and prefetches the scheduler's next segments)")
	fmt.Println()
	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func runAblations() error {
	fmt.Println("== Ablations (DESIGN.md §5) ==")
	results, err := experiments.AllAblations(experiments.DefaultParams())
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r.String())
	}
	return nil
}
