package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteTraceJSONGolden pins the -tracejson output byte-for-byte:
// the demo workload is deterministic, so any drift is a real change to
// the span model or the exporter. Refresh with `go test -update`.
func TestWriteTraceJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTraceJSON(&buf); err != nil {
		t.Fatalf("writeTraceJSON: %v", err)
	}
	golden := filepath.Join("testdata", "tracejson.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden (refresh with -update)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}

// TestWriteTraceJSONValid checks the output is well-formed Chrome
// trace-event JSON: a traceEvents array whose entries carry the
// required ph/pid/tid fields, with complete events carrying ts+dur.
func TestWriteTraceJSONValid(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTraceJSON(&buf); err != nil {
		t.Fatalf("writeTraceJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	var complete, meta int
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d has no ph: %v", i, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		switch ph {
		case "X":
			complete++
			if _, ok := ev["ts"]; !ok {
				t.Errorf("complete event %d has no ts", i)
			}
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %d has no dur", i)
			}
			if name, ok := ev["name"].(string); ok {
				names[name] = true
			}
		case "M":
			meta++
		}
	}
	if complete == 0 || meta == 0 {
		t.Errorf("events: %d complete, %d metadata; want both > 0", complete, meta)
	}
	// The hierarchy's layers are all present: driver run/round/stage
	// spans and the JQM's per-job lifetime spans.
	for _, want := range []string{"run", "round", "scan-stage", "reduce-stage", "subjob", "job"} {
		if !names[want] {
			t.Errorf("trace has no %q span", want)
		}
	}
}
