package main

import (
	"io"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// writeTraceJSON runs a small deterministic S^3 workload on the cost
// model and writes the resulting span tree as Chrome trace-event JSON
// (chrome://tracing / Perfetto). The workload is fixed — 16 blocks in
// 4 segments, 5 staggered wordcount-shaped jobs, pipelined execution —
// so the output is byte-identical across runs and golden-testable.
func writeTraceJSON(w io.Writer) error {
	store, err := dfs.NewStore(4, 1)
	if err != nil {
		return err
	}
	f, err := store.AddMetaFile("input", 16, 64<<20)
	if err != nil {
		return err
	}
	plan, err := dfs.PlanSegments(f, 4)
	if err != nil {
		return err
	}
	log, err := trace.New(4096)
	if err != nil {
		return err
	}
	// One log feeds both layers: the JQM's per-job lifetime spans and
	// the driver's run/round/stage spans land in the same trace.
	sched := core.New(plan, log)
	exec := sim.NewExecutor(sim.NewCluster(4, 1), store, sim.CostModel{
		ScanMBps:       40,
		TaskOverhead:   0.5,
		RoundOverhead:  0.3,
		JobSetup:       0.2,
		SharePenalty:   0.01,
		ReducePerRound: 0.6,
		ReduceSetup:    0.2,
	})
	arrivals := make([]driver.Arrival, 5)
	for i := range arrivals {
		arrivals[i] = driver.Arrival{
			Job: scheduler.JobMeta{ID: scheduler.JobID(i + 1), File: "input"},
			At:  vclock.Time(i) * 8,
		}
	}
	if _, err := driver.RunOpts(sched, exec, arrivals, driver.Options{
		Pipeline: true,
		Spans:    log,
	}); err != nil {
		return err
	}
	return log.WriteChromeTrace(w)
}
