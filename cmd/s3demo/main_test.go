package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

// TestDemoRuns executes the full demo — real MapReduce jobs through
// the S^3 scheduler — and checks the narrative it prints: shared-scan
// decisions, the physical scan ledger, and per-job results.
func TestDemoRuns(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently: the demo prints more than a pipe buffers.
	outCh := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run() = %v\noutput:\n%s", runErr, out)
	}

	for _, want := range []string{
		"=== Job Queue Manager decision trace (Algorithm 1) ===",
		"subjob-aligned",
		"round-launched",
		"job-completed",
		"=== physical scan ledger ===",
		"count-t*:",
		"count-a*:",
		"count-w*:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The ledger line proves scan sharing: far fewer physical block
	// scans than the 54 three isolated jobs would need (staggered
	// arrivals cost a few catch-up scans beyond the 18-block minimum).
	var scans int
	if _, err := fmt.Sscanf(out[strings.Index(out, "block scans:"):], "block scans: %d", &scans); err != nil {
		t.Fatalf("no parseable scan ledger line: %v\n%s", err, out)
	}
	if scans < 18 || scans >= 54 {
		t.Errorf("block scans = %d, want shared-scan range [18, 54)", scans)
	}
}
