// Command s3demo walks Algorithm 1 on a tiny cluster: three wordcount
// jobs arrive at different times over a 6-segment file, and the demo
// prints every Job Queue Manager decision — sub-job alignment, merged
// sub-job launches, circular cursor movement, completions — alongside
// the physical scan ledger that proves the sharing.
//
// This runs the real MapReduce engine: the jobs compute actual word
// counts over generated text and the results are printed at the end.
package main

import (
	"fmt"
	"os"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "s3demo:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes     = 3
		blocks    = 18 // 6 segments of 3 blocks
		blockSize = 4 << 10
	)
	store, err := dfs.NewStore(nodes, 1)
	if err != nil {
		return err
	}
	if _, err := workload.AddTextFile(store, "corpus", blocks, blockSize, 42); err != nil {
		return err
	}
	f, err := store.File("corpus")
	if err != nil {
		return err
	}
	plan, err := dfs.PlanSegments(f, nodes)
	if err != nil {
		return err
	}
	fmt.Printf("file %q: %d blocks of %d KiB in %d segments of %d blocks (one per map slot)\n\n",
		f.Name, f.NumBlocks, blockSize>>10, plan.NumSegments(), plan.BlocksPerSegment())

	cluster, err := mapreduce.NewCluster(store, 1)
	if err != nil {
		return err
	}
	engine := mapreduce.NewEngine(cluster)
	specs := map[scheduler.JobID]mapreduce.JobSpec{
		1: workload.WordCountJob("count-t*", "corpus", "t", 2),
		2: workload.WordCountJob("count-a*", "corpus", "a", 2),
		3: workload.WordCountJob("count-w*", "corpus", "w", 2),
	}
	exec := driver.NewEngineExecutor(engine, specs)
	// Stretch measured wall time so the staggered virtual arrivals
	// below land mid-run.
	exec.SetTimeScale(1e6)

	log := trace.MustNew(512)
	s3 := core.New(plan, log)
	fmt.Println("submitting: job 1 at t=0, job 2 and job 3 while earlier rounds are in flight")
	res, err := driver.Run(s3, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, Name: "count-t*", File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, Name: "count-a*", File: "corpus"}, At: 1},
		{Job: scheduler.JobMeta{ID: 3, Name: "count-w*", File: "corpus"}, At: 2},
	})
	if err != nil {
		return err
	}

	fmt.Println("\n=== Job Queue Manager decision trace (Algorithm 1) ===")
	fmt.Print(log.String())

	fmt.Println("=== physical scan ledger ===")
	st := store.Stats()
	fmt.Printf("block scans: %d (3 isolated jobs would need %d)\n", st.BlockReads, 3*blocks)
	fmt.Printf("rounds launched: %d\n", res.Rounds)
	tet, err := res.Metrics.TET()
	if err != nil {
		return err
	}
	art, err := res.Metrics.ART()
	if err != nil {
		return err
	}
	fmt.Printf("TET %v, ART %v (virtual time)\n", tet, art)

	fmt.Println("\n=== results (top words per job) ===")
	for id := scheduler.JobID(1); id <= 3; id++ {
		r := exec.Results()[id]
		fmt.Printf("%s:", r.Name)
		for i, kv := range r.Output {
			if i == 5 {
				fmt.Printf(" …(%d more)", len(r.Output)-5)
				break
			}
			fmt.Printf(" %s=%s", kv.Key, kv.Value)
		}
		fmt.Println()
	}
	return nil
}
