// Command s3sim runs one custom scheduling scenario on the calibrated
// discrete-event simulator and prints per-scheme TET/ART plus work
// counters. It is the free-form companion to s3bench's fixed paper
// experiments.
//
// Examples:
//
//	s3sim                                  # defaults: paper fig4a setup
//	s3sim -sched s3,fifo -jobs 4 -pattern dense -gap 5
//	s3sim -sched s3,mrshare:2:2 -jobs 4 -pattern sparse -blockmb 128
//	s3sim -sched s3 -jobs 3 -trace         # dump the decision trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/experiments"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

func main() {
	var (
		schedList = flag.String("sched", "s3,fifo,mrshare:5:5", "comma-separated schemes: s3 | s3-static | s3-nocircular | fifo | mrshare[:size:size…]")
		jobs      = flag.Int("jobs", 10, "number of jobs")
		pattern   = flag.String("pattern", "sparse", "arrival pattern: dense | sparse | uniform")
		gap       = flag.Float64("gap", 230, "inter-group gap (sparse) or inter-job gap (dense/uniform), seconds")
		intra     = flag.Float64("intra", 25, "intra-group gap for the sparse pattern, seconds")
		inputGB   = flag.Int("inputgb", 160, "input size in GB")
		blockMB   = flag.Int("blockmb", 64, "block size in MB")
		weight    = flag.Float64("weight", 1, "per-job map weight (heavy workload: ~14)")
		rweight   = flag.Float64("rweight", 1, "per-job reduce weight (heavy workload: ~25)")
		showTrace = flag.Bool("trace", false, "print the scheduler decision trace (first scheme only)")
		timeline  = flag.Bool("timeline", false, "print an ASCII Gantt of the rounds (first scheme only)")
		cacheMB   = flag.Int("cachemb", 0, "per-node block-cache budget in MB (0 = caching off)")
		cacheFrac = flag.Float64("cachefrac", 0.1, "cached scan cost as a fraction of disk cost, in [0,1]")
	)
	flag.Parse()

	times, err := arrivalTimes(*pattern, *jobs, vclock.Duration(*gap), vclock.Duration(*intra))
	if err != nil {
		fatal(err)
	}
	metas := workload.WordCountMetas(*jobs, "input", *weight, *rweight)

	var summaries []metrics.Summary
	for i, name := range strings.Split(*schedList, ",") {
		env, err := experiments.NewEnv(*inputGB, *blockMB, experiments.NormalModel())
		if err != nil {
			fatal(err)
		}
		var log *trace.Log
		if (*showTrace || *timeline) && i == 0 {
			log, err = trace.New(4096)
			if err != nil {
				fatal(err)
			}
		}
		sched, err := buildScheduler(strings.TrimSpace(name), env.Plan, log)
		if err != nil {
			fatal(err)
		}
		exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
		if *cacheMB > 0 {
			if err := exec.EnableCache(int64(*cacheMB)<<20*int64(experiments.Nodes), *cacheFrac); err != nil {
				fatal(err)
			}
		}
		arrivals := make([]driver.Arrival, len(metas))
		for j := range metas {
			arrivals[j] = driver.Arrival{Job: metas[j], At: times[j]}
		}
		res, err := driver.Run(sched, exec, arrivals)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		sum, err := res.Metrics.Summarize(sched.Name())
		if err != nil {
			fatal(err)
		}
		summaries = append(summaries, sum)
		st := exec.Stats()
		fmt.Printf("%-14s TET=%-10s ART=%-10s rounds=%-5d blockScans=%-7d mapTasks=%d",
			sched.Name(), sum.TET, sum.ART, res.Rounds, st.BlocksScanned, st.MapTasks)
		if *cacheMB > 0 {
			fmt.Printf(" cacheHits=%d (%.1f%%)", exec.CacheStats().Hits, 100*exec.CacheStats().HitRatio())
		}
		fmt.Println()
		if log != nil && *showTrace {
			fmt.Println("--- decision trace ---")
			fmt.Print(log.String())
			if log.Dropped() > 0 {
				fmt.Printf("(%d earlier events dropped)\n", log.Dropped())
			}
			fmt.Println("----------------------")
		}
		if log != nil && *timeline {
			fmt.Print(log.RenderTimeline(80))
		}
	}
	if len(summaries) > 1 {
		rep, err := metrics.Normalize(summaries[0].Scheme, summaries)
		if err == nil {
			fmt.Println()
			fmt.Print(rep.String())
		}
	}
}

func arrivalTimes(pattern string, jobs int, gap, intra vclock.Duration) ([]vclock.Time, error) {
	switch pattern {
	case "dense":
		return workload.DensePattern(jobs, gap), nil
	case "uniform":
		return workload.DensePattern(jobs, gap), nil
	case "sparse":
		// Split jobs into three groups like the paper's 3/3/4.
		a := jobs / 3
		b := jobs / 3
		c := jobs - a - b
		var sizes []int
		for _, n := range []int{a, b, c} {
			if n > 0 {
				sizes = append(sizes, n)
			}
		}
		return workload.SparseGroups(sizes, intra, gap), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}

func buildScheduler(name string, plan *dfs.SegmentPlan, log *trace.Log) (scheduler.Scheduler, error) {
	switch {
	case name == "s3":
		return core.New(plan, log), nil
	case name == "s3-static":
		return core.NewStatic(plan, log), nil
	case name == "s3-nocircular":
		return core.NewNoCircular(plan, log), nil
	case name == "fifo":
		return scheduler.NewFIFO(plan, log), nil
	case name == "fair":
		return scheduler.NewFair(plan, log), nil
	case strings.HasPrefix(name, "mrshare"), strings.HasPrefix(name, "mrs"):
		parts := strings.Split(name, ":")
		var sizes []int
		for _, p := range parts[1:] {
			n, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("bad mrshare batch size %q", p)
			}
			sizes = append(sizes, n)
		}
		if len(sizes) == 0 {
			return nil, fmt.Errorf("mrshare needs batch sizes, e.g. mrshare:6:4")
		}
		return scheduler.NewMRShare(plan, sizes, log)
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s3sim:", err)
	os.Exit(1)
}
