package main

import (
	"testing"

	"s3sched/internal/dfs"
)

func testPlan(t *testing.T) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", 8, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dfs.PlanSegments(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArrivalTimes(t *testing.T) {
	dense, err := arrivalTimes("dense", 4, 5, 0)
	if err != nil || len(dense) != 4 || dense[3] != 15 {
		t.Fatalf("dense = %v, %v", dense, err)
	}
	sparse, err := arrivalTimes("sparse", 10, 100, 5)
	if err != nil || len(sparse) != 10 {
		t.Fatalf("sparse = %v, %v", sparse, err)
	}
	// 10 jobs -> groups of 3/3/4 starting at 0, 100, 200.
	if sparse[3] != 100 || sparse[6] != 200 {
		t.Fatalf("sparse group starts = %v", sparse)
	}
	if _, err := arrivalTimes("bogus", 2, 1, 1); err == nil {
		t.Error("unknown pattern should fail")
	}
	// Small job counts still produce valid groups.
	tiny, err := arrivalTimes("sparse", 2, 50, 5)
	if err != nil || len(tiny) != 2 {
		t.Fatalf("tiny sparse = %v, %v", tiny, err)
	}
}

func TestBuildScheduler(t *testing.T) {
	plan := testPlan(t)
	for _, name := range []string{"s3", "s3-static", "s3-nocircular", "fifo", "mrshare:2:2", "mrs:4"} {
		s, err := buildScheduler(name, plan, nil)
		if err != nil {
			t.Errorf("buildScheduler(%q): %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("buildScheduler(%q) returned nil", name)
		}
	}
	for _, name := range []string{"", "nope", "mrshare", "mrshare:x", "mrshare:0"} {
		if _, err := buildScheduler(name, plan, nil); err == nil {
			t.Errorf("buildScheduler(%q) should fail", name)
		}
	}
}
