package main

import (
	"testing"

	"s3sched/internal/dfs"
)

func replayPlan(t *testing.T) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", 8, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dfs.PlanSegments(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReplayBuildScheduler(t *testing.T) {
	plan := replayPlan(t)
	for _, name := range []string{"s3", "s3-static", "s3-nocircular", "fifo", "mrshare:2:2", "window:30:5"} {
		if _, err := buildScheduler(name, plan, nil); err != nil {
			t.Errorf("buildScheduler(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "nope", "window:30", "window:x:5", "mrshare:x"} {
		if _, err := buildScheduler(name, plan, nil); err == nil {
			t.Errorf("buildScheduler(%q) should fail", name)
		}
	}
}
