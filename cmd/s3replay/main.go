// Command s3replay replays a recorded CSV arrival trace through one or
// more schedulers on the calibrated simulator and prints the paper's
// metrics plus a per-job audit table — the workflow for evaluating S^3
// against a production submission log.
//
// Trace format (see internal/workload.LoadArrivalTrace):
//
//	# id,arrival_seconds,file[,weight[,reduce_weight[,priority]]]
//	1,0,input
//	2,35.5,input,1,1,2
//
// Usage:
//
//	s3replay -trace jobs.csv -sched s3,fifo -inputgb 160 -blockmb 64
//	s3replay -trace jobs.csv -sched s3 -perjob
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/experiments"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "CSV arrival trace (required)")
		schedList = flag.String("sched", "s3,fifo", "comma-separated schemes: s3 | s3-static | s3-nocircular | fifo | mrshare:size:… | window:seconds:maxbatch")
		inputGB   = flag.Int("inputgb", 160, "input size in GB")
		blockMB   = flag.Int("blockmb", 64, "block size in MB")
		perJob    = flag.Bool("perjob", false, "print the per-job audit table (first scheme)")
		traceJSON = flag.String("tracejson", "", "write the first scheme's span tree as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "s3replay: -trace is required")
		os.Exit(2)
	}
	if err := run(*tracePath, *schedList, *inputGB, *blockMB, *perJob, *traceJSON); err != nil {
		fmt.Fprintln(os.Stderr, "s3replay:", err)
		os.Exit(1)
	}
}

func run(tracePath, schedList string, inputGB, blockMB int, perJob bool, traceJSON string) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := workload.LoadArrivalTrace(f)
	if err != nil {
		return err
	}
	// Every job must read the same file name; the simulator registers
	// it at the configured scale.
	fileName := entries[0].Job.File
	arrivals := make([]driver.Arrival, len(entries))
	for i, e := range entries {
		if e.Job.File != fileName {
			return fmt.Errorf("trace mixes files %q and %q; replay one file at a time", fileName, e.Job.File)
		}
		arrivals[i] = driver.Arrival{Job: e.Job, At: e.At}
	}
	fmt.Printf("replaying %d jobs over %q (%d GB, %d MB blocks)\n\n", len(entries), fileName, inputGB, blockMB)

	var summaries []metrics.Summary
	for i, name := range strings.Split(schedList, ",") {
		name = strings.TrimSpace(name)
		store, err := dfs.NewStore(experiments.Nodes, 1)
		if err != nil {
			return err
		}
		file, err := store.AddMetaFile(fileName, inputGB*1024/blockMB, int64(blockMB)<<20)
		if err != nil {
			return err
		}
		plan, err := dfs.PlanSegments(file, experiments.Nodes)
		if err != nil {
			return err
		}
		var opts driver.Options
		var spans *trace.Log
		if traceJSON != "" && i == 0 {
			spans, err = trace.New(1 << 16)
			if err != nil {
				return err
			}
			opts.Spans = spans
		}
		// The traced scheme shares the span log, so the JQM's per-job
		// lifetime spans land in the same Chrome trace as the driver's.
		sched, err := buildScheduler(name, plan, spans)
		if err != nil {
			return err
		}
		exec := sim.NewExecutor(sim.NewCluster(experiments.Nodes, experiments.SlotsPerNode), store, experiments.NormalModel())
		res, err := driver.RunOpts(sched, exec, arrivals, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if spans != nil {
			out, err := os.Create(traceJSON)
			if err != nil {
				return err
			}
			if err := spans.WriteChromeTrace(out); err != nil {
				out.Close()
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", traceJSON)
		}
		sum, err := res.Metrics.Summarize(sched.Name())
		if err != nil {
			return err
		}
		summaries = append(summaries, sum)
		fmt.Printf("%-14s TET=%-11s ART=%-11s rounds=%d\n", sched.Name(), sum.TET, sum.ART, res.Rounds)
		if perJob && i == 0 {
			fmt.Println("\nper-job audit (seconds):")
			if err := res.Metrics.WriteJobCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	if len(summaries) > 1 {
		rep, err := metrics.Normalize(summaries[0].Scheme, summaries)
		if err == nil {
			fmt.Println()
			fmt.Print(rep.String())
		}
	}
	return nil
}

func buildScheduler(name string, plan *dfs.SegmentPlan, log *trace.Log) (scheduler.Scheduler, error) {
	switch {
	case name == "s3":
		return core.New(plan, log), nil
	case name == "s3-static":
		return core.NewStatic(plan, log), nil
	case name == "s3-nocircular":
		return core.NewNoCircular(plan, log), nil
	case name == "fifo":
		return scheduler.NewFIFO(plan, log), nil
	case name == "fair":
		return scheduler.NewFair(plan, log), nil
	case strings.HasPrefix(name, "window:"):
		parts := strings.Split(name, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("window wants window:seconds:maxbatch, got %q", name)
		}
		var secs float64
		var max int
		if _, err := fmt.Sscanf(parts[1]+" "+parts[2], "%g %d", &secs, &max); err != nil {
			return nil, fmt.Errorf("bad window spec %q: %w", name, err)
		}
		return scheduler.NewWindowMRShare(plan, vclock.Duration(secs), max, log)
	case strings.HasPrefix(name, "mrshare:"):
		parts := strings.Split(name, ":")
		var sizes []int
		for _, p := range parts[1:] {
			var n int
			if _, err := fmt.Sscanf(p, "%d", &n); err != nil {
				return nil, fmt.Errorf("bad mrshare batch size %q", p)
			}
			sizes = append(sizes, n)
		}
		return scheduler.NewMRShare(plan, sizes, log)
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}
