// Command s3calibrate grid-searches the simulator's cost-model and
// arrival parameters against the paper's qualitative Figure 4 claims
// (internal/experiments/claims.go) and prints the best candidates.
// It is how DefaultParams was chosen; rerun it after changing the cost
// model.
//
// Usage:
//
//	s3calibrate [-top 5] [-full]
package main

import (
	"flag"
	"fmt"
	"sort"

	"s3sched/internal/experiments"
	"s3sched/internal/vclock"
)

type candidate struct {
	params     experiments.Params
	violations []string
}

func main() {
	top := flag.Int("top", 5, "how many best candidates to print")
	full := flag.Bool("full", false, "print violations of the best candidate")
	flag.Parse()

	var cands []candidate
	base := experiments.DefaultParams()
	for _, jobSetup := range []float64{0.2, 0.35} {
		for _, dispatch := range []float64{0.05} {
			for _, redSetup := range []float64{0.01, 0.02, 0.03} {
				for _, interGap := range []vclock.Duration{230, 240, 255} {
					for _, tag := range []float64{0, 0.03} {
						for _, intra := range []vclock.Duration{10, 25, 35} {
							for _, hw := range [][2]float64{{10, 25}, {14, 25}, {18, 25}, {14, 40}} {
								p := base
								p.Model.JobSetup = jobSetup
								p.Model.DispatchPerJob = dispatch
								p.Model.TagPenalty = tag
								p.Model.ReduceSetup = redSetup
								p.InterGap = interGap
								p.IntraGap = intra
								p.HeavyMapW, p.HeavyReduceW = hw[0], hw[1]
								panels, err := experiments.RunAllPanels(p)
								if err != nil {
									fmt.Println("error:", err)
									continue
								}
								cands = append(cands, candidate{p, experiments.CheckPaperClaims(panels)})
							}
						}
					}
				}
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return len(cands[i].violations) < len(cands[j].violations)
	})
	total := experiments.NumPaperClaims()
	for i := 0; i < *top && i < len(cands); i++ {
		c := cands[i]
		fmt.Printf("#%d  %d/%d claims ok  setup=%.2f redSetup=%.2f tag=%.2f inter=%v intra=%v heavy=(%g,%g)\n",
			i+1, total-len(c.violations), total,
			c.params.Model.JobSetup, c.params.Model.ReduceSetup, c.params.Model.TagPenalty,
			c.params.InterGap, c.params.IntraGap, c.params.HeavyMapW, c.params.HeavyReduceW)
		if *full && i == 0 {
			for _, v := range c.violations {
				fmt.Println("   still violated:", v)
			}
		}
	}
}
