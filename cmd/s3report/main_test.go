package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReportGoldenDiff pins the markdown diff for a fixture pair:
// testdata/regressed.json is testdata/base.json with the cache cells
// dropped (a narrower run) and the fifo/sim/-/- TET inflated 25%.
func TestReportGoldenDiff(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{
		"-baseline", filepath.Join("testdata", "base.json"),
		"-current", filepath.Join("testdata", "regressed.json"),
	}, &out)
	if code != 1 || err == nil {
		t.Fatalf("regressed diff: code=%d err=%v, want 1 and an error", code, err)
	}
	golden := filepath.Join("testdata", "diff.golden.md")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("diff markdown differs from golden (refresh with -update)\ngot:\n%s", out.String())
	}
	for _, needle := range []string{"REGRESSED", "missing in current"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("diff missing %q", needle)
		}
	}
}

func TestReportCleanPass(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{
		"-baseline", filepath.Join("testdata", "base.json"),
		"-current", filepath.Join("testdata", "base.json"),
	}, &out)
	if code != 0 || err != nil {
		t.Fatalf("self-compare: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "OK: ") {
		t.Fatalf("no OK line:\n%s", out.String())
	}
}

// A looser threshold lets the 25% regression through.
func TestReportThresholdFlag(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{
		"-baseline", filepath.Join("testdata", "base.json"),
		"-current", filepath.Join("testdata", "regressed.json"),
		"-threshold", "0.30",
	}, &out)
	if code != 0 || err != nil {
		t.Fatalf("30%% threshold: code=%d err=%v", code, err)
	}
}

func TestReportWritesMarkdownFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diff.md")
	var out bytes.Buffer
	code, _ := run([]string{
		"-baseline", filepath.Join("testdata", "base.json"),
		"-current", filepath.Join("testdata", "regressed.json"),
		"-md", path,
	}, &out)
	if code != 1 {
		t.Fatalf("code=%d, want 1", code)
	}
	md, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md, out.Bytes()) {
		t.Fatal("-md file differs from stdout diff")
	}
}

func TestReportUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(nil, &out); code != 2 || err == nil {
		t.Fatalf("missing flags: code=%d err=%v", code, err)
	}
	if code, _ := run([]string{"-baseline", "testdata/nope.json", "-current", "testdata/base.json"}, &out); code != 2 {
		t.Fatalf("unreadable baseline: code=%d, want 2", code)
	}
	if code, _ := run([]string{"-baseline", "testdata/base.json", "-current", "testdata/base.json", "-threshold", "-1"}, &out); code != 2 {
		t.Fatalf("negative threshold: code=%d, want 2", code)
	}
}
