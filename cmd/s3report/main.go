// Command s3report is the perf-regression gate over two s3compare
// report sets. It verifies both reports describe the same workload,
// re-checks the cross-scheduler output-digest consensus inside each,
// diffs TET/ART cell by cell, renders a markdown comparison table, and
// exits non-zero when any shared cell regresses beyond the threshold.
//
// Exit codes: 0 clean, 1 regression found, 2 usage / unreadable or
// incomparable reports.
//
// Usage:
//
//	s3report -baseline bench/baseline.json -current report.json
//	s3report -baseline a.json -current b.json -threshold 0.05 -md diff.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"s3sched/internal/benchfmt"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "s3report:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("s3report", flag.ContinueOnError)
	basePath := fs.String("baseline", "", "baseline report JSON (required)")
	curPath := fs.String("current", "", "current report JSON (required)")
	threshold := fs.Float64("threshold", 0.10, "relative TET/ART regression threshold (0.10 = 10%)")
	mdPath := fs.String("md", "", "also write the markdown diff to this file")
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the error
	}
	if *basePath == "" || *curPath == "" {
		return 2, fmt.Errorf("-baseline and -current are required")
	}

	base, err := readReport(*basePath)
	if err != nil {
		return 2, err
	}
	cur, err := readReport(*curPath)
	if err != nil {
		return 2, err
	}

	diff, err := benchfmt.Compare(base, cur, *threshold)
	if err != nil {
		return 2, err
	}

	md := diff.Markdown()
	fmt.Fprint(stdout, md)
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			return 2, err
		}
	}

	if regs := diff.Regressions(); len(regs) > 0 {
		return 1, fmt.Errorf("%d cell(s) regressed beyond %.0f%%", len(regs), *threshold*100)
	}
	fmt.Fprintf(stdout, "\nOK: %d cells within %.0f%% of baseline\n", len(diff.Rows), *threshold*100)
	return 0, nil
}

func readReport(path string) (*benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := benchfmt.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
