// Command s3compare runs one workload file through the scheduler
// comparison matrix — {s3, fifo, mrs1} × {sim, engine} × {pipeline
// on/off} × {cache on/off} — and emits a single benchfmt JSON report
// with one comparable cell per combination (TET, ART, P95, rounds,
// cache hit ratio, fault retries, per-job completion times, output
// digest).
//
// Every cell that produces real output carries a digest of it; the
// report refuses to encode if any two cells disagree, so a green run
// is also a cross-scheduler correctness check.
//
// Usage:
//
//	s3compare -workload bench/canonical.jsonl -o report.json
//	s3compare -workload w.jsonl -engines sim -md        # markdown table on stdout
//	s3compare -workload w.jsonl -schedulers s3,fifo -pipelines on
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"s3sched/internal/experiments"
	"s3sched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3compare:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("s3compare", flag.ContinueOnError)
	workloadPath := fs.String("workload", "", "workload file (JSONL, required)")
	out := fs.String("o", "", "write the JSON report to this file (default stdout)")
	md := fs.Bool("md", false, "print a markdown comparison table instead of JSON")
	schedulers := fs.String("schedulers", "", "comma list of schedulers (default s3,fifo,mrs1)")
	engines := fs.String("engines", "", "comma list of engines (default sim,engine)")
	pipelines := fs.String("pipelines", "", "pipeline cells: on|off|both (default both)")
	caches := fs.String("caches", "", "cache cells: on|off|both (default: off, plus on if the workload sets a budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloadPath == "" {
		return fmt.Errorf("-workload is required")
	}

	f, err := os.Open(*workloadPath)
	if err != nil {
		return err
	}
	wf, err := workload.ParseFile(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", *workloadPath, err)
	}

	opts := experiments.CompareOptions{
		Schedulers: splitList(*schedulers),
		Engines:    splitList(*engines),
	}
	if opts.Pipelines, err = parseToggle("pipelines", *pipelines); err != nil {
		return err
	}
	if opts.Caches, err = parseToggle("caches", *caches); err != nil {
		return err
	}

	rep, err := experiments.RunCompare(wf, opts)
	if err != nil {
		return err
	}

	if *md {
		fmt.Fprint(stdout, rep.Markdown())
		if *out == "" {
			return nil
		}
	}
	w := stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := rep.Encode(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %s (%d cells, workload %s)\n", *out, len(rep.Cells), rep.WorkloadDigest[:12])
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseToggle maps on|off|both to the cell subsets the matrix runner
// expects; "" defers to RunCompare's workload-aware default.
func parseToggle(name, s string) ([]bool, error) {
	switch s {
	case "":
		return nil, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("-%s: want on|off|both, got %q", name, s)
}
