package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3sched/internal/benchfmt"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (refresh with -update)\ngot:\n%s", name, got)
	}
}

// TestCompareGoldenJSON pins the full-matrix JSON report for the tiny
// fixture byte-for-byte. Cost-model pricing makes the report machine
// independent, so any drift is a real change to the schedulers, the
// engine, or the report format.
func TestCompareGoldenJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", filepath.Join("testdata", "tiny.jsonl")}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "report.golden.json", out.Bytes())

	rep, err := benchfmt.Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("report is not decodable: %v", err)
	}
	if len(rep.Cells) != 24 {
		t.Fatalf("got %d cells, want 24", len(rep.Cells))
	}
	if _, err := rep.DigestConsensus(); err != nil {
		t.Fatalf("digest consensus: %v", err)
	}
}

// TestCompareGoldenMarkdown pins the -md comparison table.
func TestCompareGoldenMarkdown(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", filepath.Join("testdata", "tiny.jsonl"), "-md", "-engines", "sim"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "report.golden.md", out.Bytes())
}

func TestCompareFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "-workload") {
		t.Fatalf("missing -workload not rejected: %v", err)
	}
	if err := run([]string{"-workload", "testdata/tiny.jsonl", "-pipelines", "sideways"}, &out); err == nil {
		t.Fatal("bad -pipelines value not rejected")
	}
	if err := run([]string{"-workload", "testdata/nope.jsonl"}, &out); err == nil {
		t.Fatal("missing workload file not rejected")
	}
}

func TestCompareWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rep.json")
	var out bytes.Buffer
	err := run([]string{"-workload", "testdata/tiny.jsonl", "-engines", "sim", "-pipelines", "off", "-caches", "off", "-o", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("no confirmation line: %q", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := benchfmt.Decode(f)
	if err != nil {
		t.Fatalf("written report invalid: %v", err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("got %d cells, want 3 (one per scheduler)", len(rep.Cells))
	}
}
