package s3sched_test

// Integration tests: whole-system scenarios that cross package
// boundaries — every scheduler driving the real MapReduce engine,
// failure injection with adaptive re-planning, timed batching through
// the driver, and randomized cross-scheme invariants on the simulator.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// realRig builds a corpus, engine executor and metas for n wordcount
// jobs over `blocks` blocks with `perSegment` blocks per segment.
func realRig(t *testing.T, blocks, perSegment, n int) (*dfs.Store, *dfs.SegmentPlan, *driver.EngineExecutor, []scheduler.JobMeta) {
	t.Helper()
	store := dfs.MustStore(perSegment, 1)
	if _, err := workload.AddTextFile(store, "corpus", blocks, 2048, 99); err != nil {
		t.Fatal(err)
	}
	f, err := store.File("corpus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	specs := make(map[scheduler.JobID]mapreduce.JobSpec, n)
	metas := make([]scheduler.JobMeta, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		id := scheduler.JobID(i + 1)
		specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
		metas[i] = scheduler.JobMeta{ID: id, File: "corpus"}
	}
	return store, plan, driver.NewEngineExecutor(engine, specs), metas
}

// TestAllSchedulersAgreeOnResults drives the same three wordcount jobs
// through every scheduler implementation on the real engine; all must
// produce byte-identical outputs.
func TestAllSchedulersAgreeOnResults(t *testing.T) {
	type mk func(t *testing.T, plan *dfs.SegmentPlan) scheduler.Scheduler
	cases := []struct {
		name string
		mk   mk
	}{
		{"s3", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler { return core.New(p, nil) }},
		{"s3-static", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler { return core.NewStatic(p, nil) }},
		{"s3-nocircular", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler { return core.NewNoCircular(p, nil) }},
		{"fifo", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler { return scheduler.NewFIFO(p, nil) }},
		{"mrshare", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler {
			m, err := scheduler.NewMRShare(p, []int{3}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"mrshare-window", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler {
			w, err := scheduler.NewWindowMRShare(p, 1000, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}},
		{"s3-dynamic", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler {
			nodes := make([]dfs.NodeID, p.BlocksPerSegment())
			for i := range nodes {
				nodes[i] = dfs.NodeID(i)
			}
			d, err := core.NewDynamic(p.File(), nodes, 1, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"s3-multifile", func(t *testing.T, p *dfs.SegmentPlan) scheduler.Scheduler {
			m, err := core.NewMultiFile([]*dfs.SegmentPlan{p}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}

	var reference map[scheduler.JobID]string
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, plan, exec, metas := realRig(t, 12, 4, 3)
			exec.SetTimeScale(1e6)
			arrivals := make([]driver.Arrival, len(metas))
			for i := range metas {
				arrivals[i] = driver.Arrival{Job: metas[i], At: vclock.Time(i)}
			}
			if _, err := driver.Run(tc.mk(t, plan), exec, arrivals); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got := make(map[scheduler.JobID]string, 3)
			for id, res := range exec.Results() {
				got[id] = fmt.Sprint(res.Output)
			}
			if len(got) != 3 {
				t.Fatalf("%s: %d results, want 3", tc.name, len(got))
			}
			if reference == nil {
				reference = got
				return
			}
			for id, want := range reference {
				if got[id] != want {
					t.Errorf("%s: job %d output differs from reference", tc.name, id)
				}
			}
		})
	}
}

// observingExec wraps an executor and invokes a hook after every
// round — the "periodical slot checking" feedback path (§IV-D1).
type observingExec struct {
	inner   driver.Executor
	round   int
	onRound func(round int)
}

func (o *observingExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	d, err := o.inner.ExecRound(r)
	o.round++
	if o.onRound != nil {
		o.onRound(o.round)
	}
	return d, err
}

// TestFailureInjectionSlotCheckerAdapts degrades a node mid-run; the
// slot checker observes it through the feedback hook, DynamicS3
// shrinks its segments, and when the node recovers the segments grow
// back. The run must complete with every job done.
func TestFailureInjectionSlotCheckerAdapts(t *testing.T) {
	const nodes = 4
	store := dfs.MustStore(nodes, 1)
	f, err := store.AddMetaFile("input", 64, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	cluster := sim.NewCluster(nodes, 1)
	model := sim.CostModel{ScanMBps: 64}
	simExec := sim.NewExecutor(cluster, store, model)

	log := trace.MustNew(256)
	checker := core.NewSlotChecker(0.5, 1.0, log)
	all := []dfs.NodeID{0, 1, 2, 3}
	for _, n := range all {
		checker.Observe(n, 1.0, 0)
	}
	dyn, err := core.NewDynamic(f, all, 1, checker, log)
	if err != nil {
		t.Fatal(err)
	}

	// Node 2 fails down to 0.1x speed between rounds 4 and 10, then
	// recovers. The hook plays the periodic checker's role.
	exec := &observingExec{inner: simExec, onRound: func(round int) {
		switch round {
		case 4:
			cluster.SetSpeed(2, 0.1)
			checker.Observe(2, 0.1, 0)
		case 10:
			cluster.SetSpeed(2, 1.0)
			checker.Observe(2, 1.0, 0)
		}
	}}

	res, err := driver.Run(dyn, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inc := res.Metrics.Incomplete(); len(inc) != 0 {
		t.Fatalf("incomplete jobs: %v", inc)
	}
	if exc := log.OfKind(trace.NodeExcluded); len(exc) != 1 {
		t.Errorf("exclusion events = %d, want 1", len(exc))
	}
	if rest := log.OfKind(trace.NodeRestored); len(rest) != 1 {
		t.Errorf("restore events = %d, want 1", len(rest))
	}
}

// TestWindowBatcherFiresWithoutArrivals checks the driver's Waker
// path: the last batch's window expires after the final arrival, and
// the run still completes.
func TestWindowBatcherFiresWithoutArrivals(t *testing.T) {
	store := dfs.MustStore(2, 1)
	f, err := store.AddMetaFile("input", 4, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := scheduler.NewWindowMRShare(plan, 50, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	exec := driver.ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) { return 5, nil })
	res, err := driver.Run(w, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Batch seals at t=50 (window from first arrival), runs 2 rounds
	// of 5s: both jobs complete at 60.
	rt, err := res.Metrics.ResponseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if rt != 60 {
		t.Errorf("job 1 response = %v, want 60 (50 window + 10 run)", rt)
	}
	if res.End != 60 {
		t.Errorf("end = %v, want 60", res.End)
	}
}

// TestMultiFileRealEngine runs wordcount and selection jobs over two
// different files through one MultiFile scheduler on the real engine.
func TestMultiFileRealEngine(t *testing.T) {
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(store, "corpus", 8, 2048, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.AddLineitemFile(store, "lineitem", 8, 8<<10, 2); err != nil {
		t.Fatal(err)
	}
	fc, err := store.File("corpus")
	if err != nil {
		t.Fatal(err)
	}
	fl, err := store.File("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	pc, err := dfs.PlanSegments(fc, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := dfs.PlanSegments(fl, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMultiFile([]*dfs.SegmentPlan{pc, pl}, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	exec := driver.NewEngineExecutor(engine, map[scheduler.JobID]mapreduce.JobSpec{
		1: workload.WordCountJob("wc", "corpus", "t", 2),
		2: workload.SelectionJob("sel", "lineitem", 5),
	})
	exec.SetTimeScale(1e6)
	res, err := driver.Run(m, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "corpus"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "lineitem"}, At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != 2 || len(res.Metrics.Incomplete()) != 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	if len(exec.Results()[1].Output) == 0 || len(exec.Results()[2].Output) == 0 {
		t.Error("both jobs should produce output")
	}
}

// Property: under random two-group arrival patterns on a pure-scan
// cost model, (a) every scheme completes all jobs, (b) all schemes do
// the same per-job map work, (c) S^3 never loses to FIFO on ART, and
// (d) S^3 never scans more blocks than FIFO.
func TestRandomPatternsS3DominatesFIFO(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 2 + rng.Intn(4)
		k := 4 + rng.Intn(6) // segments

		runScheme := func(mk func(p *dfs.SegmentPlan) scheduler.Scheduler) (art float64, scans int64, tasks int64, ok bool) {
			store := dfs.MustStore(2, 1)
			f, err := store.AddMetaFile("input", k, 64<<20)
			if err != nil {
				return 0, 0, 0, false
			}
			plan, err := dfs.PlanSegments(f, 1)
			if err != nil {
				return 0, 0, 0, false
			}
			exec := sim.NewExecutor(sim.NewCluster(1, 1), store, sim.CostModel{ScanMBps: 6.4})
			var arrivals []driver.Arrival
			at := vclock.Time(0)
			for j := 0; j < nJobs; j++ {
				arrivals = append(arrivals, driver.Arrival{
					Job: scheduler.JobMeta{ID: scheduler.JobID(j + 1), File: "input"},
					At:  at,
				})
				at = at.Add(vclock.Duration(rng.Intn(30)))
			}
			res, err := driver.Run(mk(plan), exec, arrivals)
			if err != nil {
				return 0, 0, 0, false
			}
			artD, err := res.Metrics.ART()
			if err != nil {
				return 0, 0, 0, false
			}
			st := exec.Stats()
			return artD.Seconds(), st.BlocksScanned, st.MapTasks, true
		}

		s3ART, s3Scans, s3Tasks, ok1 := runScheme(func(p *dfs.SegmentPlan) scheduler.Scheduler { return core.New(p, nil) })
		fifoART, fifoScans, fifoTasks, ok2 := runScheme(func(p *dfs.SegmentPlan) scheduler.Scheduler { return scheduler.NewFIFO(p, nil) })
		if !ok1 || !ok2 {
			return false
		}
		if s3Tasks != fifoTasks {
			return false // same logical work regardless of scheme
		}
		if s3Scans > fifoScans {
			return false // sharing can only reduce scans
		}
		return s3ART <= fifoART+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStressManyJobs pushes 500 jobs with random arrivals through S^3
// at paper scale on the simulator: everything completes, the
// all-active-share invariant holds, and no quadratic blowup makes the
// run crawl.
func TestStressManyJobs(t *testing.T) {
	const jobs = 500
	store := dfs.MustStore(40, 1)
	f, err := store.AddMetaFile("input", 2560, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 40)
	if err != nil {
		t.Fatal(err)
	}
	s3 := core.New(plan, nil)
	exec := sim.NewExecutor(sim.NewCluster(40, 1), store, sim.CostModel{ScanMBps: 40, TaskOverhead: 2.5})

	rng := rand.New(rand.NewSource(99))
	arrivals := make([]driver.Arrival, jobs)
	at := vclock.Time(0)
	for i := range arrivals {
		arrivals[i] = driver.Arrival{
			Job: scheduler.JobMeta{ID: scheduler.JobID(i + 1), File: "input"},
			At:  at,
		}
		at = at.Add(vclock.Duration(rng.Intn(60)))
	}
	res, err := driver.Run(s3, exec, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != jobs || len(res.Metrics.Incomplete()) != 0 {
		t.Fatalf("jobs=%d incomplete=%v", res.Metrics.Jobs(), res.Metrics.Incomplete())
	}
	art, err := res.Metrics.ART()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: responses stay bounded (every job completes within k
	// rounds of joining; shared rounds keep the queue from diverging).
	maxRT, _ := res.Metrics.MaxResponse()
	if maxRT.Seconds() > 5*art.Seconds() {
		t.Errorf("max response %v vs ART %v: unexpected spread", maxRT, art)
	}
}
