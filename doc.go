// Package s3sched reproduces "S^3: An Efficient Shared Scan Scheduler
// on MapReduce Framework" (Shi, Li, Tan — ICPP 2011) as a
// self-contained Go system: a from-scratch MapReduce engine and
// block-store substrate, the S^3 scheduler with its segment/sub-job
// machinery, the FIFO and MRShare baselines, a calibrated
// discrete-event cluster simulator, and a benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// Layout:
//
//	internal/core       S^3 itself: JQM (Algorithm 1), circular scan,
//	                    sub-job alignment, slot checking, dynamic
//	                    segment sizing, ablation variants
//	internal/dfs        block store, placement, segment plans
//	internal/mapreduce  real execution engine (map/shuffle/reduce,
//	                    merged shared-scan rounds)
//	internal/scheduler  Scheduler interface + FIFO + MRShare
//	internal/sim        discrete-event simulator + cost model
//	internal/driver     arrival loop binding schedulers to executors
//	internal/workload   text & TPC-H lineitem generators, job families
//	internal/metrics    TET / ART, normalized Figure-4-style reports
//	internal/experiments  every paper experiment + claim checks
//	cmd/s3bench         regenerate all tables & figures
//	cmd/s3sim           free-form simulator runs
//	cmd/s3demo          Algorithm 1 walkthrough with live trace
//	cmd/s3calibrate     cost-model calibration search
//	examples/           runnable quickstart + workload scenarios
//
// The top-level bench_test.go maps each paper table/figure to one
// testing.B benchmark; see EXPERIMENTS.md for paper-vs-measured.
package s3sched
